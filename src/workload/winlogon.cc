#include <algorithm>

#include "src/base/format.h"
#include "src/workload/apps.h"
#include "src/workload/io_helpers.h"

namespace ntrace {

WinlogonModel::WinlogonModel(SystemContext& ctx, AppModelConfig config, uint64_t seed)
    : AppModel(ctx, "winlogon.exe", /*takes_user_input=*/false, config, seed) {}

void WinlogonModel::Logon() {
  // Profile download: "these files are downloaded to each system the user
  // logs into from a profile server, through the winlogon process"
  // (section 5). The process lifetime is determined by the number and size
  // of files in the profile -- one of the paper's examples of heavy-tailed
  // process behavior.
  if (ctx_.catalog->share_prefix.empty()) {
    return;
  }
  const std::string remote_profile = ctx_.catalog->share_prefix + "\\profile";
  FileObject* handle = nullptr;
  std::vector<FindData> entries;
  if (ctx_.win32->FindFirstFile(remote_profile, "*", pid_, &handle, &entries)) {
    while (ctx_.win32->FindNextFile(*handle, &entries)) {
    }
  }
  if (handle != nullptr) {
    ctx_.win32->FindClose(*handle);
  }
  const size_t limit = std::min<size_t>(entries.size(), 200);
  for (size_t i = 0; i < limit; ++i) {
    if (entries[i].attributes & kAttrDirectory) {
      continue;
    }
    // Download only files that changed since the local copy (mod-time
    // comparison -> attribute probe on the local file, often failing).
    const std::string local = ctx_.catalog->profile_dir + "\\" + entries[i].name;
    const auto local_attrs = ctx_.win32->GetFileAttributes(local, pid_);
    if (!local_attrs.has_value() || rng_.Bernoulli(0.3)) {
      ctx_.win32->CopyFile(remote_profile + "\\" + entries[i].name, local, pid_);
    }
  }
}

void WinlogonModel::OnSessionEnd() {
  // "At the end of each session the changes to the profiles are migrated
  // back to the central server" (section 5).
  if (!ctx_.catalog->share_prefix.empty()) {
    const std::string remote_profile = ctx_.catalog->share_prefix + "\\profile";
    const int changed = static_cast<int>(rng_.UniformInt(5, 40));
    for (int i = 0; i < changed; ++i) {
      const std::string local = PickFrom(ctx_.catalog->documents.empty()
                                             ? ctx_.catalog->config_files
                                             : ctx_.catalog->documents);
      if (local.empty()) {
        break;
      }
      const std::vector<std::string> parts = SplitPath(local);
      if (parts.empty()) {
        continue;
      }
      ctx_.win32->CopyFile(local, remote_profile + "\\" + parts.back(), pid_);
    }
  }
  AppModel::OnSessionEnd();
}

void WinlogonModel::RunBurst() {
  // Between logon and logout winlogon only refreshes policy occasionally.
  const std::string cfg = PickFrom(ctx_.catalog->config_files);
  if (!cfg.empty()) {
    ctx_.win32->GetFileAttributes(cfg, pid_);
  }
}

}  // namespace ntrace
