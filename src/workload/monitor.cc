#include "src/workload/apps.h"

namespace ntrace {

MonitorModel::MonitorModel(SystemContext& ctx, AppModelConfig config, uint64_t seed)
    : AppModel(ctx, "shell32.exe", /*takes_user_input=*/false, config, seed) {}

void MonitorModel::RunBurst() {
  // Name-validation volume probe (section 8.3).
  ctx_.io->FsctlVolume(ctx_.catalog->local_prefix, FsctlCode::kIsVolumeMounted, pid_);
  // Attribute polls on desktop/config items; frequently probing names that
  // no longer exist (part of the 52% name-not-found error share).
  // Compression-state probe (fails on this volume; part of the 8% of
  // control operations that fail, section 8.4).
  if (rng_.Bernoulli(0.6)) {
    const std::string path = PickFrom(ctx_.catalog->config_files);
    if (!path.empty()) {
      NtStatus status;
      FileObject* fo = ctx_.win32->CreateFile(path, kAccessReadAttributes,
                                              Win32Disposition::kOpenExisting, 0, pid_,
                                              &status);
      if (fo != nullptr) {
        ctx_.io->Fsctl(*fo, FsctlCode::kSetCompression);
        ctx_.win32->CloseHandle(*fo);
      }
    }
  }
  if (rng_.Bernoulli(0.6)) {
    const std::string path = rng_.Bernoulli(0.12)
                                 ? ctx_.catalog->profile_dir + "\\desktop\\missing" +
                                       std::to_string(rng_.UniformInt(0, 99)) + ".lnk"
                                 : PickFrom(ctx_.catalog->config_files);
    if (!path.empty()) {
      ctx_.win32->GetFileAttributes(path, pid_);
    }
  }
}

}  // namespace ntrace
