// The study fleet: N systems across the five usage categories, traced into
// one collection (paper sections 2-3: 45 systems selected from 250, three
// collection servers, 4 weeks).
//
// Systems are simulated sequentially on private engines whose clocks all
// start at the same epoch; the merged trace is time-comparable across
// systems, exactly as the study's per-system traces were. Sequential
// simulation bounds peak memory to one machine's state.

#ifndef SRC_WORKLOAD_FLEET_H_
#define SRC_WORKLOAD_FLEET_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/trace/collection_server.h"
#include "src/workload/simulated_system.h"

namespace ntrace {

struct FleetConfig {
  // Systems per usage category (paper total: 45). Defaults give a small,
  // fast fleet; benches scale these up.
  int walk_up = 2;
  int pool = 2;
  int personal = 2;
  int administrative = 1;
  int scientific = 1;

  int days = 1;
  uint64_t seed = 42;
  double activity_scale = 1.0;
  double content_scale = 1.0;
  CacheConfig cache_config;
  FsOptions fs_options;
  TraceFilterOptions filter_options;
  bool with_share = true;
  bool daily_snapshots = true;
  // Fault schedule applied to every system (each machine gets its own
  // injector stream derived from fault_config.seed + system_id, so results
  // are reproducible per system). Disabled by default.
  FaultConfig fault_config;
  ShipmentPolicy shipment_policy;

  int TotalSystems() const {
    return walk_up + pool + personal + administrative + scientific;
  }
};

struct FleetResult {
  TraceSet trace;  // Merged, time-sorted, with process names resolved.
  std::vector<SystemRunStats> systems;
  // Per-system pipeline accounting (agent counters merged with the
  // collection server's sequence bookkeeping, abandoned shipments
  // reconciled against what actually arrived). Every emitted record is
  // collected, overflow-dropped, shed, lost or unresolved -- AllAccounted()
  // holds for clean and faulted runs alike.
  IntegrityReport integrity;

  // Aggregates across systems.
  CacheStats TotalCache() const;
  uint64_t TotalFastIoReadAttempts() const;
  uint64_t TotalFastIoReadHits() const;
  uint64_t TotalFastIoWriteAttempts() const;
  uint64_t TotalFastIoWriteHits() const;
};

// Runs the configured fleet and returns the merged collection.
FleetResult RunFleet(const FleetConfig& config);

}  // namespace ntrace

#endif  // SRC_WORKLOAD_FLEET_H_
