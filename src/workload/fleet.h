// The study fleet: N systems across the five usage categories, traced into
// one collection (paper sections 2-3: 45 systems selected from 250, three
// collection servers, 4 weeks).
//
// Systems are simulated on private engines whose clocks all start at the
// same epoch; the merged trace is time-comparable across systems, exactly
// as the study's per-system traces were. Each system is embarrassingly
// parallel (private engine, pre-drawn seed, its own CollectionServer
// shard), so `FleetConfig::threads` runs the fleet on a fixed-size worker
// pool; shards are merged in system-id order and the per-system
// time-sorted streams are k-way merged, making the output bit-identical
// for every thread count (DESIGN.md §7). threads == 1 (the default) is
// the sequential path and bounds peak memory to one machine's state plus
// the collected shards; N workers hold at most N machines' state.

#ifndef SRC_WORKLOAD_FLEET_H_
#define SRC_WORKLOAD_FLEET_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/metrics/metrics.h"
#include "src/net/net_config.h"
#include "src/trace/collection_server.h"
#include "src/workload/simulated_system.h"

namespace ntrace {

// Durable-spool and crash-recovery configuration (DESIGN.md §10). Off by
// default: with an empty spool_dir the fleet touches no disk and behaves
// exactly as before the durability layer existed.
struct DurabilityConfig {
  // Directory for per-system spool segments and the checkpoint manifest.
  // Created if missing. Empty disables durability entirely.
  std::string spool_dir;
  // Restore systems from sealed segments found in spool_dir instead of
  // re-simulating them (segments are validated against a fingerprint of the
  // fleet configuration, so a stale directory is ignored, never trusted).
  bool resume = true;
  // Also accept damaged or unsealed segments: replay the valid prefix and
  // charge what the original run had collected beyond it to
  // records_lost_to_corruption. Without salvage, damaged segments are
  // re-simulated from scratch.
  bool salvage = false;
  // Restarts granted per system after a crash before it is declared failed
  // and dropped from the merged output.
  int max_restarts = 3;
  // A worker that delivers nothing for this long (wall clock) is cancelled
  // by the watchdog and treated as crashed. <= 0 disables the watchdog.
  double watchdog_deadline_s = 30.0;
  // Spool flush granularity: ordinary frames batch in the stdio buffer
  // until this many bytes accumulate (checkpoint frames always flush).
  // 0 flushes every frame -- maximum durability, an order of magnitude
  // more flush syscalls. Excluded from the config fingerprint: like
  // `threads`, it cannot change the output.
  size_t flush_bytes = 1u << 20;

  bool enabled() const { return !spool_dir.empty(); }
};

// What the supervisor did to get the run finished (wall-clock facts, like
// FleetResult::metrics excluded from the bit-identical output contract --
// except records_salvaged / records_lost_to_corruption, which are exact).
struct FleetRecoveryStats {
  uint64_t systems_simulated = 0;    // Ran live (restarted runs count once).
  uint64_t systems_resumed = 0;      // Restored from sealed segments.
  uint64_t systems_salvaged = 0;     // Restored from damaged segments.
  uint64_t systems_failed = 0;       // Restarts exhausted; absent from output.
  uint64_t worker_crashes = 0;       // Injected crashes observed.
  uint64_t worker_restarts = 0;
  uint64_t watchdog_cancellations = 0;
  // Systems ending the run with a sealed checkpoint segment on disk: those
  // sealed by this invocation's workers plus those resumed from a seal left
  // by an earlier one.
  uint64_t segments_sealed = 0;
  // Records readable from crashed partial segments at the time of the crash
  // (what a salvage-only recovery would have kept).
  uint64_t partial_records_salvageable = 0;
  uint64_t records_salvaged = 0;
  uint64_t records_lost_to_corruption = 0;
};

// Transport accounting for a run collected over the loopback service
// (DESIGN.md §11). Wall-clock / transport facts: like FleetResult::metrics
// they are excluded from the bit-identical output contract -- the whole
// point of the session layer is that none of this changes the merged trace.
// All zero when net collection is off.
struct FleetNetStats {
  bool used = false;                 // The run went over the socket.
  uint64_t frames_sent = 0;          // Data frames assigned by agents.
  uint64_t frames_delivered = 0;     // In-order deliveries at the service.
  uint64_t records_delivered = 0;
  uint64_t duplicate_frames = 0;     // Absorbed by the session layer.
  uint64_t out_of_order_frames = 0;  // Parked in reorder buffers.
  uint64_t frames_dropped = 0;       // Reorder overflow (resent later).
  uint64_t busy_signals = 0;         // BUSY acks the service sent.
  uint64_t shed_signals = 0;         // SHED acks the service sent.
  uint64_t evictions = 0;            // Slow clients closed by their shard.
  uint64_t connections_accepted = 0;
  uint64_t agent_reconnects = 0;
  uint64_t agent_faults_injected = 0;  // Transport faults that fired.
  uint64_t sessions_restored = 0;      // Rebuilt from segments after a crash.
  uint64_t server_crashes = 0;         // Injected service crashes.
  uint64_t server_restarts = 0;        // Supervisor restarts of the service.
  uint64_t agent_failures = 0;         // Agents out of retries (system absent).
};

struct FleetConfig {
  // Systems per usage category (paper total: 45). Defaults give a small,
  // fast fleet; benches scale these up.
  int walk_up = 2;
  int pool = 2;
  int personal = 2;
  int administrative = 1;
  int scientific = 1;

  int days = 1;
  uint64_t seed = 42;
  double activity_scale = 1.0;
  double content_scale = 1.0;
  CacheConfig cache_config;
  FsOptions fs_options;
  TraceFilterOptions filter_options;
  bool with_share = true;
  bool daily_snapshots = true;
  // Fault schedule applied to every system (each machine gets its own
  // injector stream derived from fault_config.seed + system_id, so results
  // are reproducible per system). Disabled by default.
  FaultConfig fault_config;
  ShipmentPolicy shipment_policy;
  // Durable spool + checkpoint/resume (DESIGN.md §10). Like `threads`,
  // enabling durability never changes the merged output of a run that
  // finishes: trace bytes, names and integrity are bit-identical with the
  // spool on or off, across crashes and resumes.
  DurabilityConfig durability;
  // Networked collection (DESIGN.md §11): when net.enabled, systems stream
  // their deliveries to a loopback CollectionService over TCP instead of
  // into in-process shards. The session layer guarantees exactly-once,
  // in-order delivery, so -- like `threads` and `durability` -- the merged
  // output is bit-identical with the socket on or off, whatever transport
  // faults or server crashes the run takes. With durability also enabled,
  // the service spools server-side and a mid-stream crash resumes exactly.
  NetCollectionConfig net;

  // Worker threads simulating systems concurrently: 1 = sequential
  // (default), 0 = hardware concurrency, N = pool of N (capped at the
  // system count). The merged output is bit-identical across all values --
  // trace bytes, names, process map and integrity report alike.
  int threads = 1;

  int TotalSystems() const {
    return walk_up + pool + personal + administrative + scientific;
  }
};

struct FleetResult {
  TraceSet trace;  // Merged, time-sorted, with process names resolved.
  std::vector<SystemRunStats> systems;
  // Per-system pipeline accounting (agent counters merged with the
  // collection server's sequence bookkeeping, abandoned shipments
  // reconciled against what actually arrived). Every emitted record is
  // collected, overflow-dropped, shed, lost or unresolved -- AllAccounted()
  // holds for clean and faulted runs alike.
  IntegrityReport integrity;
  // What the process-wide metrics registry recorded during this run (delta
  // of global snapshots taken at RunFleet entry/exit, so earlier runs in
  // the same process do not bleed in; concurrent RunFleet calls would).
  // Tests cross-check these against the analysis layer: the FastIO share
  // and cache hit ratio here equal the figure-13 / section-9 values
  // computed from the merged trace of the same run.
  MetricsSnapshot metrics;
  // What the crash-recovery supervisor did (all zero when durability is off
  // and no crash plan is armed).
  FleetRecoveryStats recovery;
  // What the transport did when the run was collected over the socket.
  FleetNetStats net;

  // Aggregates across systems.
  CacheStats TotalCache() const;
  uint64_t TotalFastIoReadAttempts() const;
  uint64_t TotalFastIoReadHits() const;
  uint64_t TotalFastIoWriteAttempts() const;
  uint64_t TotalFastIoWriteHits() const;
};

// Runs the configured fleet and returns the merged collection.
FleetResult RunFleet(const FleetConfig& config);

}  // namespace ntrace

#endif  // SRC_WORKLOAD_FLEET_H_
