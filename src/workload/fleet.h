// The study fleet: N systems across the five usage categories, traced into
// one collection (paper sections 2-3: 45 systems selected from 250, three
// collection servers, 4 weeks).
//
// Systems are simulated on private engines whose clocks all start at the
// same epoch; the merged trace is time-comparable across systems, exactly
// as the study's per-system traces were. Each system is embarrassingly
// parallel (private engine, pre-drawn seed, its own CollectionServer
// shard), so `FleetConfig::threads` runs the fleet on a fixed-size worker
// pool; shards are merged in system-id order and the per-system
// time-sorted streams are k-way merged, making the output bit-identical
// for every thread count (DESIGN.md §7). threads == 1 (the default) is
// the sequential path and bounds peak memory to one machine's state plus
// the collected shards; N workers hold at most N machines' state.

#ifndef SRC_WORKLOAD_FLEET_H_
#define SRC_WORKLOAD_FLEET_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/metrics/metrics.h"
#include "src/trace/collection_server.h"
#include "src/workload/simulated_system.h"

namespace ntrace {

struct FleetConfig {
  // Systems per usage category (paper total: 45). Defaults give a small,
  // fast fleet; benches scale these up.
  int walk_up = 2;
  int pool = 2;
  int personal = 2;
  int administrative = 1;
  int scientific = 1;

  int days = 1;
  uint64_t seed = 42;
  double activity_scale = 1.0;
  double content_scale = 1.0;
  CacheConfig cache_config;
  FsOptions fs_options;
  TraceFilterOptions filter_options;
  bool with_share = true;
  bool daily_snapshots = true;
  // Fault schedule applied to every system (each machine gets its own
  // injector stream derived from fault_config.seed + system_id, so results
  // are reproducible per system). Disabled by default.
  FaultConfig fault_config;
  ShipmentPolicy shipment_policy;

  // Worker threads simulating systems concurrently: 1 = sequential
  // (default), 0 = hardware concurrency, N = pool of N (capped at the
  // system count). The merged output is bit-identical across all values --
  // trace bytes, names, process map and integrity report alike.
  int threads = 1;

  int TotalSystems() const {
    return walk_up + pool + personal + administrative + scientific;
  }
};

struct FleetResult {
  TraceSet trace;  // Merged, time-sorted, with process names resolved.
  std::vector<SystemRunStats> systems;
  // Per-system pipeline accounting (agent counters merged with the
  // collection server's sequence bookkeeping, abandoned shipments
  // reconciled against what actually arrived). Every emitted record is
  // collected, overflow-dropped, shed, lost or unresolved -- AllAccounted()
  // holds for clean and faulted runs alike.
  IntegrityReport integrity;
  // What the process-wide metrics registry recorded during this run (delta
  // of global snapshots taken at RunFleet entry/exit, so earlier runs in
  // the same process do not bleed in; concurrent RunFleet calls would).
  // Tests cross-check these against the analysis layer: the FastIO share
  // and cache hit ratio here equal the figure-13 / section-9 values
  // computed from the merged trace of the same run.
  MetricsSnapshot metrics;

  // Aggregates across systems.
  CacheStats TotalCache() const;
  uint64_t TotalFastIoReadAttempts() const;
  uint64_t TotalFastIoReadHits() const;
  uint64_t TotalFastIoWriteAttempts() const;
  uint64_t TotalFastIoWriteHits() const;
};

// Runs the configured fleet and returns the merged collection.
FleetResult RunFleet(const FleetConfig& config);

}  // namespace ntrace

#endif  // SRC_WORKLOAD_FLEET_H_
