#include "src/workload/io_helpers.h"

#include <algorithm>

#include "src/stats/distributions.h"

namespace ntrace {
namespace {

// Heavy-tailed inter-operation processing time; xm tuned so ~80% of gaps
// fall under the paper's 90 us (reads) / 30 us (writes) marks.
void Pause(Win32Api& win32, Rng* pacing, double xm_us) {
  if (pacing == nullptr) {
    return;
  }
  const double us = std::min(ParetoDistribution(xm_us, 1.2).Sample(*pacing), 50000.0);
  win32.io().engine().AdvanceBy(SimDuration::FromMicrosF(us));
}

}  // namespace

uint64_t ReadToEnd(Win32Api& win32, FileObject& file, uint32_t buffer, Rng* pacing) {
  uint64_t total = 0;
  for (;;) {
    uint64_t got = 0;
    if (!win32.ReadFile(file, buffer, &got) || got == 0) {
      break;
    }
    total += got;
    Pause(win32, pacing, 18.0);
    if (got < buffer) {
      break;
    }
  }
  return total;
}

uint64_t WriteAmount(Win32Api& win32, FileObject& file, uint64_t total, uint32_t buffer,
                     Rng* pacing) {
  uint64_t written = 0;
  while (written < total) {
    const uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(buffer, total - written));
    uint64_t put = 0;
    if (!win32.WriteFile(file, chunk, &put)) {
      break;
    }
    written += put;
    Pause(win32, pacing, 7.0);
  }
  return written;
}

void ProcessingPause(Win32Api& win32, Rng& rng, double xm_ms) {
  const double ms = std::min(ParetoDistribution(xm_ms, 1.3).Sample(rng), 30000.0);
  win32.io().engine().AdvanceBy(SimDuration::FromMillisF(ms));
}

uint32_t StdioRequestSize(Rng& rng) {
  const double u = rng.NextDouble();
  if (u < 0.34) {
    return 4096;
  }
  if (u < 0.59) {
    return 512;
  }
  if (u < 0.72) {  // Very small reads (single fields).
    return static_cast<uint32_t>(rng.UniformInt(2, 8));
  }
  if (u < 0.90) {  // Medium.
    return static_cast<uint32_t>(rng.UniformInt(1, 16)) * 1024;
  }
  // Very large: Pareto tail from 48 KB, capped at 4 MB (section 7: request
  // sizes themselves are heavy-tailed).
  const double v = BoundedParetoDistribution(48.0 * 1024, 4.0 * 1024 * 1024, 1.2).Sample(rng);
  return static_cast<uint32_t>(v);
}

uint32_t WriteRequestSize(Rng& rng) {
  const double u = rng.NextDouble();
  if (u < 0.45) {  // Small structures, diverse sizes below 1 KB.
    return static_cast<uint32_t>(rng.UniformInt(4, 1024));
  }
  if (u < 0.70) {
    return 4096;
  }
  if (u < 0.90) {
    return static_cast<uint32_t>(rng.UniformInt(2, 16)) * 1024;
  }
  const double v = BoundedParetoDistribution(48.0 * 1024, 4.0 * 1024 * 1024, 1.2).Sample(rng);
  return static_cast<uint32_t>(v);
}

}  // namespace ntrace
