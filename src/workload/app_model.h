// Application behavior models: the workload generator's unit of activity.
//
// The paper's section 7 finding drives the design: file system activity is
// process-controlled, not user-controlled ("more than 92% of the file
// accesses in our traces were from processes that take no direct user
// input"), with heavy-tailed process lifetimes, library counts and access
// spacing. Each model is a process that, once launched, performs *bursts*
// of file operations separated by heavy-tailed (Pareto) OFF periods --
// the classical construction that yields self-similar aggregate traffic.

#ifndef SRC_WORKLOAD_APP_MODEL_H_
#define SRC_WORKLOAD_APP_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/mm/vm_manager.h"
#include "src/ntio/io_manager.h"
#include "src/ntio/process.h"
#include "src/sim/engine.h"
#include "src/stats/distributions.h"
#include "src/win32/win32_api.h"
#include "src/workload/fs_image.h"

namespace ntrace {

// Everything a model needs to act on one simulated machine.
struct SystemContext {
  Engine* engine = nullptr;
  IoManager* io = nullptr;
  Win32Api* win32 = nullptr;
  VmManager* vm = nullptr;
  ProcessTable* processes = nullptr;
  ImageCatalog* catalog = nullptr;
  uint32_t system_id = 0;
};

struct AppModelConfig {
  // OFF-period (think time) between bursts: Pareto(xm seconds, alpha).
  double off_xm_seconds = 2.0;
  double off_alpha = 1.3;
  // Mean number of bursts per session hour (used to gate total volume).
  double activity_scale = 1.0;
};

class AppModel {
 public:
  AppModel(SystemContext& ctx, std::string image_name, bool takes_user_input,
           AppModelConfig config, uint64_t seed);
  virtual ~AppModel() = default;

  AppModel(const AppModel&) = delete;
  AppModel& operator=(const AppModel&) = delete;

  // Spawns the process, demand-loads its image + a heavy-tailed number of
  // DLLs, and schedules the first burst. Activity stops at `session_end`.
  void Launch(SimTime session_end);

  // Called by the session driver at logout; default stops future bursts and
  // exits the process.
  virtual void OnSessionEnd();

  const std::string& image_name() const { return image_name_; }
  uint32_t pid() const { return pid_; }
  uint64_t bursts_run() const { return bursts_run_; }

 protected:
  // One ON-period of application work. Implementations issue file
  // operations synchronously (the engine charges their latency).
  virtual void RunBurst() = 0;

  // Subclass hook after the image is loaded at launch.
  virtual void OnLaunched() {}

  void ScheduleNextBurst();
  bool SessionActive() const;

  // Demand-loads a fraction of an executable/dll through the VM manager.
  void LoadImage(const std::string& path);

  // Pick a uniformly random element; empty-vector safe (returns "").
  std::string PickFrom(const std::vector<std::string>& v);

  SystemContext& ctx_;
  Rng rng_;
  uint32_t pid_ = 0;

 private:
  std::string image_name_;
  bool takes_user_input_;
  AppModelConfig config_;
  ParetoDistribution off_time_;
  SimTime session_end_;
  bool running_ = false;
  uint64_t bursts_run_ = 0;
  uint64_t generation_ = 0;  // Guards scheduled bursts across sessions.
};

}  // namespace ntrace

#endif  // SRC_WORKLOAD_APP_MODEL_H_
