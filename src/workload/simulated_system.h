// One simulated machine of the study fleet.
//
// Wires the full per-system stack the way section 2-3 of the paper
// describes a traced machine: a local volume behind an NTFS-like driver, a
// network-redirector volume for the user's home share, cache and VM
// managers, the trace agent with its filter driver on top of both volumes,
// and the application models of the machine's usage category driven by a
// daily login/logout session with heavy-tailed lengths.

#ifndef SRC_WORKLOAD_SIMULATED_SYSTEM_H_
#define SRC_WORKLOAD_SIMULATED_SYSTEM_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/fault/fault.h"
#include "src/fs/fs_driver.h"
#include "src/fs/redirector.h"
#include "src/mm/cache_manager.h"
#include "src/mm/vm_manager.h"
#include "src/ntio/io_manager.h"
#include "src/sim/engine.h"
#include "src/trace/trace_agent.h"
#include "src/win32/win32_api.h"
#include "src/workload/apps.h"
#include "src/workload/fs_image.h"

namespace ntrace {

// The five usage categories of section 2.
enum class UsageCategory : uint8_t {
  kWalkUp,
  kPool,
  kPersonal,
  kAdministrative,
  kScientific,
};
constexpr int kNumUsageCategories = 5;

std::string_view UsageCategoryName(UsageCategory c);

struct SystemOptions {
  uint32_t system_id = 1;
  UsageCategory category = UsageCategory::kPersonal;
  uint64_t seed = 1;
  int days = 1;
  // Scales burst frequency (1.0 approximates the paper's 80k-1.4M events
  // per day) and initial content counts (1.0 = 24k-45k local files).
  double activity_scale = 1.0;
  double content_scale = 1.0;
  CacheConfig cache_config;  // capacity_pages of 0 selects per-category default.
  FsOptions fs_options;
  TraceFilterOptions filter_options;
  bool with_share = true;
  bool daily_snapshots = true;
  // Fault schedule (strictly opt-in; a disabled config is byte-identical to
  // no fault layer at all) and the shipment link's retry/shedding policy.
  FaultConfig fault_config;
  ShipmentPolicy shipment_policy;
};

// Post-run statistics harvested before the system is destroyed.
struct SystemRunStats {
  uint32_t system_id = 0;
  UsageCategory category = UsageCategory::kPersonal;
  CacheStats cache;
  VmStats vm;
  FsStats local_fs;
  FsStats remote_fs;
  uint64_t fastio_read_attempts = 0;
  uint64_t fastio_read_hits = 0;
  uint64_t fastio_write_attempts = 0;
  uint64_t fastio_write_hits = 0;
  uint64_t irp_count = 0;
  uint64_t trace_records = 0;
  uint64_t trace_drops = 0;
  uint64_t sessions_run = 0;
  std::vector<SnapshotSeries> snapshots;

  // Pipeline-resilience counters (all zero in fault-free runs).
  uint64_t trace_emitted = 0;
  uint64_t trace_shed = 0;
  uint64_t trace_lost = 0;
  uint64_t trace_unresolved = 0;
  uint64_t shipments_sent = 0;
  uint64_t shipment_attempts = 0;
  uint64_t shipment_failures = 0;
  uint64_t shipments_abandoned = 0;
  uint64_t peak_retry_backlog = 0;
  // Abandoned (sequence, record_count) pairs for server-side reconciliation.
  std::vector<std::pair<uint64_t, uint64_t>> abandoned_shipments;
  uint64_t disk_read_errors = 0;
  uint64_t disk_write_errors = 0;
  uint64_t paging_retries = 0;
};

class SimulatedSystem {
 public:
  SimulatedSystem(const SystemOptions& options, TraceSink& sink);
  ~SimulatedSystem();

  SimulatedSystem(const SimulatedSystem&) = delete;
  SimulatedSystem& operator=(const SimulatedSystem&) = delete;

  // Runs the configured number of simulated days and returns the harvested
  // statistics. The trace stream goes to the sink passed at construction.
  SystemRunStats Run();

  // Component access for tests.
  Engine& engine() { return engine_; }
  IoManager& io() { return *io_; }
  CacheManager& cache() { return *cache_; }
  Win32Api& win32() { return *win32_; }
  ImageCatalog& catalog() { return catalog_; }
  ProcessTable& processes() { return processes_; }
  FileSystemDriver& local_fs() { return *local_fs_; }

 private:
  void BuildStacks();
  void BuildModels();
  void StartSession();
  void EndSession();

  SystemOptions options_;
  TraceSink& sink_;
  Rng rng_;
  Engine engine_;
  ProcessTable processes_;
  std::unique_ptr<IoManager> io_;
  std::unique_ptr<CacheManager> cache_;
  std::unique_ptr<VmManager> vm_;
  std::unique_ptr<Win32Api> win32_;
  std::unique_ptr<FileSystemDriver> local_fs_;
  std::unique_ptr<RedirectorDriver> remote_fs_;
  std::vector<std::unique_ptr<DeviceObject>> devices_;
  std::unique_ptr<FaultInjector> fault_injector_;  // Null when faults are off.
  std::unique_ptr<TraceAgent> agent_;
  ImageCatalog catalog_;
  SystemContext ctx_;

  std::vector<std::unique_ptr<AppModel>> user_models_;
  std::unique_ptr<WinlogonModel> winlogon_;
  std::unique_ptr<ServicesModel> services_;
  std::unique_ptr<MonitorModel> monitor_;
  std::vector<double> model_launch_probability_;
  uint64_t sessions_run_ = 0;
  bool session_active_ = false;
};

}  // namespace ntrace

#endif  // SRC_WORKLOAD_SIMULATED_SYSTEM_H_
