// Figures 8-10 and the section 7 distribution analysis: arrival-rate views
// at three time scales against a fitted Poisson synthesis, QQ plots against
// Normal and Pareto, the LLCD tail plot with its least-squares alpha, and
// Hill estimates for the traced quantities.

#ifndef SRC_ANALYSIS_BURSTINESS_H_
#define SRC_ANALYSIS_BURSTINESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/stats/descriptive.h"
#include "src/stats/tails.h"
#include "src/trace/trace_set.h"

namespace ntrace {

struct ArrivalViews {
  // Figure 8: per-interval open counts at 1 s / 10 s / 100 s, for the trace
  // sample and for a Poisson process with the same mean rate.
  std::vector<double> trace_1s;
  std::vector<double> trace_10s;
  std::vector<double> trace_100s;
  std::vector<double> poisson_1s;
  std::vector<double> poisson_10s;
  std::vector<double> poisson_100s;
  // Coefficient of variation per view; Poisson smooths with scale, heavy
  // tails do not (the figure-8 visual in one number).
  double trace_cv[3] = {0, 0, 0};
  double poisson_cv[3] = {0, 0, 0};
};

struct TailDiagnostics {
  std::string quantity;
  double hill_alpha = 0;       // Paper range: 1.2-1.7.
  LlcdSeries llcd;             // Figure 10.
  QqSeries qq_normal;          // Figure 9 left.
  QqSeries qq_pareto;          // Figure 9 right.
  size_t samples = 0;
};

class BurstinessAnalyzer {
 public:
  // Open-arrival inter-arrival sample (milliseconds) of one system (0 = the
  // busiest system, as the paper picks one trace file).
  static std::vector<double> OpenInterarrivalsMs(const TraceSet& trace, uint32_t system_id = 0);

  static ArrivalViews BuildArrivalViews(const TraceSet& trace, uint32_t system_id = 0,
                                        uint64_t seed = 99);

  // Full tail diagnostics for a positive sample.
  static TailDiagnostics Diagnose(std::string quantity, std::vector<double> sample);

  // The section-7 sweep: Hill estimates for session inter-arrival times,
  // session holding times, read/write request sizes, per-session byte
  // counts and file sizes.
  static std::vector<TailDiagnostics> SweepAll(const TraceSet& trace);
};

}  // namespace ntrace

#endif  // SRC_ANALYSIS_BURSTINESS_H_
