#include "src/analysis/cache_analysis.h"

namespace ntrace {

CacheAnalysisResult CacheAnalyzer::Analyze(const TraceSet& trace,
                                           const InstanceTable& instances,
                                           const CacheStats& stats) {
  return Analyze(TraceScan::Run(trace), instances, stats);
}

CacheAnalysisResult CacheAnalyzer::Analyze(const TraceScan& scan,
                                           const InstanceTable& instances,
                                           const CacheStats& stats) {
  CacheAnalysisResult out;

  if (stats.copy_reads > 0) {
    out.cached_read_fraction =
        static_cast<double>(stats.copy_read_hits) / static_cast<double>(stats.copy_reads);
  }
  out.lazy_write_irps = stats.lazy_write_irps;
  out.lazy_write_bytes = stats.lazy_write_bytes;
  if (stats.lazy_write_irps > 0) {
    out.lazy_write_mean_run_bytes =
        static_cast<double>(stats.lazy_write_bytes) / stats.lazy_write_irps;
  }
  out.seteof_on_close = stats.seteof_on_close;
  if (stats.purge_calls > 0) {
    out.overwrite_with_dirty_fraction =
        static_cast<double>(stats.purges_with_dirty) / stats.purge_calls;
  }
  out.temporary_pages_skipped = stats.temporary_pages_skipped;

  uint64_t read_sessions = 0;
  uint64_t single_io = 0;
  uint64_t single_prefetch = 0;
  uint64_t sequential_opens = 0;
  uint64_t sequential_with_hint = 0;
  uint64_t data_sessions = 0;
  uint64_t nocache_sessions = 0;
  uint64_t writing_sessions = 0;
  uint64_t write_through_sessions = 0;
  uint64_t flushing_sessions = 0;
  uint64_t new_files_deleted = 0;
  uint64_t temp_candidates = 0;

  for (const Instance& s : instances.rows()) {
    if (s.open_failed) {
      continue;
    }
    if (s.HasData()) {
      ++data_sessions;
      if ((s.create_options & kOptNoIntermediateBuffering) != 0) {
        ++nocache_sessions;
      }
    }
    if (s.reads() > 0) {
      ++read_sessions;
      if (s.reads() == 1) {
        ++single_io;
      }
      // "In 92% of the open-for-read cases a single prefetch was sufficient
      // to load the data to satisfy all subsequent reads from the cache":
      // at most one demand fault plus at most one speculative read.
      if (s.pagein_irps + s.readahead_irps <= 1) {
        ++single_prefetch;
      }
      // Sequential-access sessions and the sequential-only open hint.
      bool sequential = true;
      uint64_t expected = s.ops.empty() ? 0 : s.ops.front().offset;
      for (const RwOp& op : s.ops) {
        if (op.write) {
          continue;
        }
        if (op.offset != expected) {
          sequential = false;
          break;
        }
        expected = op.offset + op.length;
      }
      if (sequential && s.reads() > 1) {
        ++sequential_opens;
        if ((s.create_options & kOptSequentialOnly) != 0) {
          ++sequential_with_hint;
        }
      }
    }
    if (s.writes() > 0) {
      ++writing_sessions;
      if ((s.create_options & kOptWriteThrough) != 0) {
        ++write_through_sessions;
      }
    }
    // Temporary-attribute candidates: new files that die shortly (within
    // the session or soon after) without the attribute.
    const bool created = s.create_action == CreateAction::kCreated ||
                         s.create_action == CreateAction::kSuperseded;
    if (created && (s.set_delete_disposition || s.delete_on_close())) {
      ++new_files_deleted;
      if (!s.temporary()) {
        ++temp_candidates;
      }
    }
  }

  // Flush users: sessions with an observed FLUSH_BUFFERS record (collected
  // by the single-pass scan).
  for (const Instance& s : instances.rows()) {
    if (!s.open_failed && s.writes() > 0 && scan.FileWasFlushed(s.file_object)) {
      ++flushing_sessions;
    }
  }

  if (read_sessions > 0) {
    out.single_io_session_fraction = static_cast<double>(single_io) / read_sessions;
    out.single_prefetch_fraction = static_cast<double>(single_prefetch) / read_sessions;
  }
  if (sequential_opens > 0) {
    out.sequential_hint_open_fraction =
        static_cast<double>(sequential_with_hint) / sequential_opens;
  }
  if (data_sessions > 0) {
    out.read_cache_disabled_fraction = static_cast<double>(nocache_sessions) / data_sessions;
  }
  if (writing_sessions > 0) {
    out.write_through_fraction = static_cast<double>(write_through_sessions) / writing_sessions;
    out.flush_user_fraction = static_cast<double>(flushing_sessions) / writing_sessions;
  }
  if (new_files_deleted > 0) {
    out.temporary_benefit_fraction =
        static_cast<double>(temp_candidates) / new_files_deleted;
  }
  return out;
}

}  // namespace ntrace
