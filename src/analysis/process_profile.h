// Per-process and per-file-type access profiles.
//
// Section 12 lists "per process and per file type access characteristics"
// as the next analyses the trace collection supports; section 8.1 sketches
// what they look like (FrontPage never holds files beyond a few
// milliseconds; development environments and database engines keep 40-50%
// of their files open for their whole lifetime; loadwc holds files for the
// entire user session). This analyzer materializes those profiles from the
// instance table.

#ifndef SRC_ANALYSIS_PROCESS_PROFILE_H_
#define SRC_ANALYSIS_PROCESS_PROFILE_H_

#include <map>
#include <string>
#include <vector>

#include "src/stats/descriptive.h"
#include "src/trace/trace_set.h"
#include "src/tracedb/instance_table.h"

namespace ntrace {

struct ProcessProfile {
  std::string image_name;
  uint64_t opens = 0;
  uint64_t failed_opens = 0;
  uint64_t data_sessions = 0;
  uint64_t control_only_sessions = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t distinct_files = 0;
  StreamingStats session_length_ms;
  double control_only_fraction = 0;
  // Session-length 90th percentile (ms); the FrontPage-vs-loadwc contrast.
  double session_p90_ms = 0;
};

struct FileTypeProfile {
  FileCategory category = FileCategory::kOther;
  uint64_t opens = 0;
  uint64_t bytes = 0;
  StreamingStats file_size;
  StreamingStats session_length_ms;
};

class ProcessProfileAnalyzer {
 public:
  // One profile per process image, sorted by opens descending.
  static std::vector<ProcessProfile> ByProcess(const TraceSet& trace,
                                               const InstanceTable& instances);

  // One profile per file-type category (drill-down level 2 of the paper's
  // file-type dimension).
  static std::vector<FileTypeProfile> ByFileType(const InstanceTable& instances);
};

}  // namespace ntrace

#endif  // SRC_ANALYSIS_PROCESS_PROFILE_H_
