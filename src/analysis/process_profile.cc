#include "src/analysis/process_profile.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace ntrace {

std::vector<ProcessProfile> ProcessProfileAnalyzer::ByProcess(const TraceSet& trace,
                                                              const InstanceTable& instances) {
  struct Accumulator {
    ProcessProfile profile;
    std::set<std::string> files;
    WeightedCdf sessions_ms;
  };
  std::map<std::string, Accumulator> by_name;

  for (const Instance& s : instances.rows()) {
    const std::string* name = trace.ProcessNameOf(s.process_id);
    Accumulator& acc = by_name[name != nullptr ? *name : std::string("<unknown>")];
    ++acc.profile.opens;
    if (s.open_failed) {
      ++acc.profile.failed_opens;
      continue;
    }
    acc.files.insert(s.path);
    if (s.HasData()) {
      ++acc.profile.data_sessions;
    } else {
      ++acc.profile.control_only_sessions;
    }
    acc.profile.bytes_read += s.bytes_read;
    acc.profile.bytes_written += s.bytes_written;
    if (s.cleanup_time > 0) {
      const double ms = SimDuration(s.cleanup_time - s.open_complete).ToMillisF();
      acc.profile.session_length_ms.Add(ms);
      acc.sessions_ms.Add(ms);
    }
  }

  std::vector<ProcessProfile> out;
  out.reserve(by_name.size());
  for (auto& [name, acc] : by_name) {
    acc.profile.image_name = name;
    acc.profile.distinct_files = acc.files.size();
    const uint64_t ok = acc.profile.opens - acc.profile.failed_opens;
    acc.profile.control_only_fraction =
        ok > 0 ? static_cast<double>(acc.profile.control_only_sessions) / ok : 0;
    acc.sessions_ms.Finalize();
    if (!acc.sessions_ms.empty()) {
      acc.profile.session_p90_ms = acc.sessions_ms.Percentile(0.90);
    }
    out.push_back(std::move(acc.profile));
  }
  std::sort(out.begin(), out.end(), [](const ProcessProfile& a, const ProcessProfile& b) {
    return a.opens > b.opens;
  });
  return out;
}

std::vector<FileTypeProfile> ProcessProfileAnalyzer::ByFileType(
    const InstanceTable& instances) {
  std::map<FileCategory, FileTypeProfile> by_category;
  for (const Instance& s : instances.rows()) {
    if (s.open_failed) {
      continue;
    }
    FileTypeProfile& profile = by_category[s.file_type.category];
    profile.category = s.file_type.category;
    ++profile.opens;
    profile.bytes += s.bytes_read + s.bytes_written;
    profile.file_size.Add(static_cast<double>(s.max_file_size));
    if (s.cleanup_time > 0) {
      profile.session_length_ms.Add(
          SimDuration(s.cleanup_time - s.open_complete).ToMillisF());
    }
  }
  std::vector<FileTypeProfile> out;
  out.reserve(by_category.size());
  for (auto& [_, profile] : by_category) {
    out.push_back(std::move(profile));
  }
  std::sort(out.begin(), out.end(), [](const FileTypeProfile& a, const FileTypeProfile& b) {
    return a.opens > b.opens;
  });
  return out;
}

}  // namespace ntrace
