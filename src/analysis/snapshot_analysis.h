// Section 5: file system content characteristics, from the daily snapshot
// series -- counts, fullness, type-weighted size distributions, churn
// localization (profile tree / WWW cache), and timestamp reliability.

#ifndef SRC_ANALYSIS_SNAPSHOT_ANALYSIS_H_
#define SRC_ANALYSIS_SNAPSHOT_ANALYSIS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/stats/descriptive.h"
#include "src/trace/snapshot.h"
#include "src/tracedb/dimensions.h"

namespace ntrace {

struct ContentSummary {
  uint64_t files = 0;
  uint64_t directories = 0;
  double fullness = 0;  // used/capacity (paper: 54%-87%).
  // Share of total bytes per file category (executables/dlls/fonts dominate).
  std::array<double, kNumFileCategories> bytes_share{};
  std::array<double, kNumFileCategories> count_share{};
  // Share of *files* living under the profile tree.
  double profile_file_share = 0;
  uint64_t web_cache_files = 0;
  uint64_t web_cache_bytes = 0;
  // Timestamp anomalies: creation time after last access (paper: 2-4%).
  double creation_after_access_fraction = 0;
  WeightedCdf file_sizes;
};

struct ChurnSummary {
  // Per consecutive snapshot pair.
  StreamingStats files_changed_per_day;   // Paper: 300-500, peaks 2.5k-3k.
  double profile_change_share = 0;        // Paper: ~94% of changes in profile.
  double web_cache_change_share = 0;      // Paper: up to 90% of profile changes.
  uint64_t total_added = 0;
  uint64_t total_removed = 0;
  uint64_t total_modified = 0;
};

class SnapshotAnalyzer {
 public:
  static ContentSummary SummarizeContent(const Snapshot& snapshot);

  // Churn across a time-ordered series of snapshots of one volume.
  static ChurnSummary AnalyzeChurn(const SnapshotSeries& series);

  // Reconstructs full relative paths from the pre-order record sequence.
  static std::vector<std::string> RecordPaths(const Snapshot& snapshot);
};

}  // namespace ntrace

#endif  // SRC_ANALYSIS_SNAPSHOT_ANALYSIS_H_
