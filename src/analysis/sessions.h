// Figures 5, 11, 12 and the section 8.1 open/close characteristics:
// open-request inter-arrivals, file open times, session lifetimes, file
// reuse, and the two-stage cleanup/close latency split.

#ifndef SRC_ANALYSIS_SESSIONS_H_
#define SRC_ANALYSIS_SESSIONS_H_

#include <cstdint>

#include "src/stats/descriptive.h"
#include "src/trace/trace_set.h"
#include "src/tracedb/instance_table.h"

namespace ntrace {

struct SessionResult {
  // Figure 5: open durations of data sessions (milliseconds), overall and
  // split by volume locality.
  WeightedCdf open_time_all_ms;
  WeightedCdf open_time_local_ms;
  WeightedCdf open_time_network_ms;
  double data_open_p75_ms = 0;  // Paper: ~10 ms (vs 250 ms in Sprite).

  // Figure 11: open-request inter-arrival (milliseconds), by purpose.
  WeightedCdf open_interarrival_io_ms;
  WeightedCdf open_interarrival_control_ms;
  double interarrival_p40_ms = 0;  // Paper: 40% within 1 ms.
  double interarrival_p90_ms = 0;  // Paper: 90% within 30 ms.

  // Figure 12: session lifetime (ms) by usage type.
  WeightedCdf session_all_ms;
  WeightedCdf session_control_ms;
  WeightedCdf session_data_ms;
  double session_p40_ms = 0;  // Paper: 40% close within 1 ms.
  double session_p90_ms = 0;  // Paper: 90% within 1 s.

  // Section 8.1: cleanup -> close gap (microseconds).
  WeightedCdf close_gap_read_us;   // Read-cached: 4-50 us.
  WeightedCdf close_gap_write_us;  // Write-cached: 1-4 s.

  // Reuse: fraction of read-only-opened files re-opened in the trace, and
  // of write-only files re-opened for reading (section 8.1).
  double readonly_reopen_fraction = 0;
  double writeonly_reopened_for_read_fraction = 0;

  // Fraction of 1-second intervals of the trace that contain any open
  // request ("only up to 24% ... have open requests recorded").
  double seconds_with_opens_fraction = 0;
};

class SessionAnalyzer {
 public:
  static SessionResult Analyze(const TraceSet& trace, const InstanceTable& instances);
};

}  // namespace ntrace

#endif  // SRC_ANALYSIS_SESSIONS_H_
