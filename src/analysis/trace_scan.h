// Single-pass trace scan (DESIGN.md §9).
//
// The section-8, section-9 and section-10 analyses each used to make their
// own sweep over TraceSet::records -- for a multi-million-record fleet trace
// that is three full passes over hundreds of megabytes of records, and the
// record vector falls out of cache between passes. TraceScan computes every
// per-record aggregate those analyses need in ONE sweep:
//
//   * operation mix -- request counts, size distributions and modes, the
//     control/directory dominance, the error mix, and the section-7 process
//     attribution (operations.cc);
//   * FastIO vs IRP shares -- per-mechanism latency and size distributions
//     and the fallback counts (fastio.cc);
//   * cache ratios -- the paging/app transfer mix, read-ahead and lazy-write
//     record shares, and the set of flushed file objects (cache_analysis.cc);
//   * sequential run lengths -- maximal same-direction contiguous transfer
//     chains per file object, computed streaming (figures 1-2 cross-check).
//
// The analyzers consume a shared, memoized TraceScan (Study::Scan()); their
// results are identical to the former per-analyzer sweeps because the scan
// visits records in the same order and applies the same per-record logic.

#ifndef SRC_ANALYSIS_TRACE_SCAN_H_
#define SRC_ANALYSIS_TRACE_SCAN_H_

#include <cstdint>

#include "src/base/flat_map.h"
#include "src/stats/descriptive.h"
#include "src/trace/trace_set.h"

namespace ntrace {

struct TraceScan {
  // --- Operation mix (non-paging records; section 8) -------------------------
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t reads_512_or_4096 = 0;
  uint64_t reads_small = 0;     // 2-8 bytes.
  uint64_t reads_48k_plus = 0;  // >= 48 KB.
  uint64_t read_failures = 0;   // Errors plus end-of-file reads.
  uint64_t write_failures = 0;
  uint64_t opens = 0;
  uint64_t open_failures = 0;
  uint64_t open_notfound = 0;
  uint64_t open_collision = 0;
  uint64_t directory_ops = 0;
  uint64_t control_ops = 0;
  uint64_t control_total = 0;  // control_ops + directory_ops.
  uint64_t control_failures = 0;
  uint64_t volume_mounted_checks = 0;
  uint64_t seteof_ops = 0;
  WeightedCdf read_sizes;   // Finalized.
  WeightedCdf write_sizes;  // Finalized.

  // --- Section 7 process attribution -----------------------------------------
  uint64_t attributed = 0;       // Records whose process name is known.
  uint64_t non_interactive = 0;  // Of those: non-interactive process class.

  // Distinct (system, wall-clock second) pairs with app-level activity.
  uint64_t active_seconds = 0;

  // --- FastIO vs IRP (section 10, figures 13-14) -----------------------------
  uint64_t fastio_reads = 0;
  uint64_t irp_reads = 0;
  uint64_t fastio_writes = 0;
  uint64_t irp_writes = 0;
  uint64_t read_fallbacks = 0;
  uint64_t write_fallbacks = 0;
  WeightedCdf fastio_read_latency_us;  // All finalized.
  WeightedCdf fastio_write_latency_us;
  WeightedCdf irp_read_latency_us;
  WeightedCdf irp_write_latency_us;
  WeightedCdf fastio_read_size;
  WeightedCdf fastio_write_size;
  WeightedCdf irp_read_size;
  WeightedCdf irp_write_size;

  // --- Cache / paging transfer mix (section 9) -------------------------------
  uint64_t paging_reads = 0;  // PagingIo-flagged transfers (Cc/Mm-issued).
  uint64_t paging_read_bytes = 0;
  uint64_t paging_writes = 0;
  uint64_t paging_write_bytes = 0;
  uint64_t readahead_records = 0;  // Speculative loads among paging reads.
  uint64_t readahead_bytes = 0;
  uint64_t lazywrite_records = 0;  // Write-behind among paging writes.
  uint64_t lazywrite_bytes = 0;

  // File objects that saw an explicit FLUSH_BUFFERS (membership only; the
  // value is unused and iteration order never observed).
  FlatMap<uint64_t, uint8_t> flushed_files;
  bool FileWasFlushed(uint64_t file_object) const {
    return flushed_files.count(file_object) != 0;
  }

  // --- Record-level sequential run lengths (figures 1-2 cross-check) ---------
  // A run is a maximal chain of same-direction app-level transfers on one
  // file object, each starting where the previous ended. Computed streaming
  // with O(open file objects) state instead of materializing per-session op
  // vectors. Value = run length in bytes; the by_count CDFs weight each run
  // once, the by_bytes CDFs weight by the bytes moved (figure 1 vs 2).
  WeightedCdf read_runs_by_count;  // Finalized.
  WeightedCdf read_runs_by_bytes;
  WeightedCdf write_runs_by_count;
  WeightedCdf write_runs_by_bytes;

  // Performs the sweep. The trace's name index and process-name table are
  // only read, never mutated (PathOf is not needed; ProcessNameOf is a plain
  // unordered_map lookup).
  static TraceScan Run(const TraceSet& trace);
};

}  // namespace ntrace

#endif  // SRC_ANALYSIS_TRACE_SCAN_H_
