// Figures 13-14 and section 10: FastIO path usage, per-mechanism latency
// and request-size distributions.

#ifndef SRC_ANALYSIS_FASTIO_H_
#define SRC_ANALYSIS_FASTIO_H_

#include "src/analysis/trace_scan.h"
#include "src/stats/descriptive.h"
#include "src/trace/trace_set.h"

namespace ntrace {

struct FastIoResultAnalysis {
  // Figure 13: completion latency (microseconds) per request type.
  WeightedCdf fastio_read_latency_us;
  WeightedCdf fastio_write_latency_us;
  WeightedCdf irp_read_latency_us;
  WeightedCdf irp_write_latency_us;

  // Figure 14: requested size per request type.
  WeightedCdf fastio_read_size;
  WeightedCdf fastio_write_size;
  WeightedCdf irp_read_size;
  WeightedCdf irp_write_size;

  // Section 10 headline shares (paper: 59% of reads, 96% of writes).
  double fastio_read_share = 0;
  double fastio_write_share = 0;
  // FastIO attempts that fell back to the IRP path.
  uint64_t read_fallbacks = 0;
  uint64_t write_fallbacks = 0;
};

class FastIoAnalyzer {
 public:
  // App-level requests only (paging I/O always travels the IRP path by
  // construction and would skew the comparison). The per-record work lives
  // in the shared single-pass scan (DESIGN.md §9).
  static FastIoResultAnalysis Analyze(const TraceScan& scan);

  // Convenience overload performing its own scan.
  static FastIoResultAnalysis Analyze(const TraceSet& trace);
};

}  // namespace ntrace

#endif  // SRC_ANALYSIS_FASTIO_H_
