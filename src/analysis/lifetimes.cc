#include "src/analysis/lifetimes.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace ntrace {
namespace {

struct PathEvent {
  enum Kind { kCreated, kOverwritten, kDeleted, kTempDeleted, kOpened } kind;
  int64_t at = 0;            // Event time (creation completion / death time).
  int64_t close_at = 0;      // Cleanup of the handle (0 if absent).
  uint32_t process = 0;
  uint64_t size = 0;         // Size observed at the event.
};

}  // namespace

LifetimeResult LifetimeAnalyzer::Analyze(const TraceSet& trace,
                                         const InstanceTable& instances) {
  LifetimeResult result;

  // Per-path time-ordered event streams (instances are in create order).
  std::map<std::string, std::vector<PathEvent>> events;
  for (const Instance& s : instances.rows()) {
    if (s.open_failed || s.path.empty()) {
      continue;
    }
    const bool created = s.create_action == CreateAction::kCreated ||
                         s.create_action == CreateAction::kSuperseded;
    const bool overwrote = s.create_action == CreateAction::kOverwritten ||
                           s.create_action == CreateAction::kSuperseded;
    if (overwrote) {
      events[s.path].push_back(PathEvent{PathEvent::kOverwritten, s.open_complete,
                                         s.cleanup_time, s.process_id, s.file_size_at_open});
    }
    if (created) {
      events[s.path].push_back(PathEvent{PathEvent::kCreated, s.open_complete, s.cleanup_time,
                                         s.process_id, s.max_file_size});
      ++result.new_files;
    }
    if (s.cleanup_time != 0 && (s.set_delete_disposition || s.delete_on_close())) {
      const PathEvent::Kind kind = s.set_delete_disposition && !s.delete_on_close()
                                       ? PathEvent::kDeleted
                                       : PathEvent::kTempDeleted;
      events[s.path].push_back(
          PathEvent{kind, s.cleanup_time, s.cleanup_time, s.process_id, s.max_file_size});
    }
    if (!created && !overwrote && s.HasData()) {
      // Intermediate open (used for the opens-between statistic).
      events[s.path].push_back(
          PathEvent{PathEvent::kOpened, s.open_complete, s.cleanup_time, s.process_id, 0});
    }
  }
  (void)trace;

  // Match each creation with the next death event on the same path.
  std::vector<double> sizes;
  std::vector<double> lifetimes;
  uint64_t died_4s = 0;
  uint64_t died_30s = 0;
  uint64_t overwrites_4ms = 0;
  uint64_t deletes_4s = 0;
  uint64_t overwrite_same_proc = 0;
  uint64_t delete_same_proc = 0;
  uint64_t delete_opened_between = 0;
  WeightedCdf overwrite_close_gap;

  for (auto& [path, list] : events) {
    std::stable_sort(list.begin(), list.end(),
                     [](const PathEvent& a, const PathEvent& b) { return a.at < b.at; });
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i].kind != PathEvent::kCreated) {
        continue;
      }
      uint32_t opens_between = 0;
      for (size_t j = i + 1; j < list.size(); ++j) {
        const PathEvent& death = list[j];
        if (death.kind == PathEvent::kOpened) {
          ++opens_between;
          continue;
        }
        if (death.kind == PathEvent::kCreated) {
          break;  // Re-created without an observed death (lost overwrite).
        }
        NewFileDeath d;
        d.method = death.kind == PathEvent::kOverwritten ? DeletionMethod::kOverwrite
                   : death.kind == PathEvent::kDeleted   ? DeletionMethod::kExplicitDelete
                                                         : DeletionMethod::kTemporary;
        d.lifetime_ms = SimDuration(death.at - list[i].at).ToMillisF();
        if (list[i].close_at != 0 && death.at > list[i].close_at) {
          d.close_to_death_ms = SimDuration(death.at - list[i].close_at).ToMillisF();
        }
        d.size_at_death = death.kind == PathEvent::kOverwritten ? death.size : list[i].size;
        d.same_process = death.process == list[i].process;
        d.opens_between = opens_between;
        result.deaths.push_back(d);

        if (d.lifetime_ms <= 4000.0) {
          ++died_4s;
        }
        if (d.lifetime_ms <= 30000.0) {
          ++died_30s;
        }
        switch (d.method) {
          case DeletionMethod::kOverwrite:
            result.overwrite_lifetime_ms.Add(d.lifetime_ms);
            if (d.lifetime_ms <= 4.0) {
              ++overwrites_4ms;
            }
            if (d.same_process) {
              ++overwrite_same_proc;
            }
            if (d.close_to_death_ms > 0) {
              overwrite_close_gap.Add(d.close_to_death_ms);
            }
            break;
          case DeletionMethod::kExplicitDelete:
            result.delete_lifetime_ms.Add(d.lifetime_ms);
            if (d.lifetime_ms <= 4000.0) {
              ++deletes_4s;
            }
            if (d.same_process) {
              ++delete_same_proc;
            }
            if (d.opens_between > 0) {
              ++delete_opened_between;
            }
            break;
          case DeletionMethod::kTemporary:
            break;
        }
        sizes.push_back(static_cast<double>(d.size_at_death));
        lifetimes.push_back(d.lifetime_ms);
        break;
      }
    }
  }

  result.overwrite_lifetime_ms.Finalize();
  result.delete_lifetime_ms.Finalize();
  overwrite_close_gap.Finalize();

  const double n = static_cast<double>(result.deaths.size());
  if (n > 0) {
    uint64_t overwrite_count = 0;
    uint64_t explicit_count = 0;
    uint64_t temp_count = 0;
    for (const NewFileDeath& d : result.deaths) {
      switch (d.method) {
        case DeletionMethod::kOverwrite:
          ++overwrite_count;
          break;
        case DeletionMethod::kExplicitDelete:
          ++explicit_count;
          break;
        case DeletionMethod::kTemporary:
          ++temp_count;
          break;
      }
    }
    result.overwrite_share = overwrite_count / n;
    result.explicit_share = explicit_count / n;
    result.temporary_share = temp_count / n;
    result.died_within_4s_fraction = died_4s / n;
    result.died_within_30s_fraction = died_30s / n;
    result.overwritten_within_4ms_fraction =
        overwrite_count > 0 ? static_cast<double>(overwrites_4ms) / overwrite_count : 0;
    result.deleted_within_4s_fraction =
        explicit_count > 0 ? static_cast<double>(deletes_4s) / explicit_count : 0;
    result.overwrite_same_process_fraction =
        overwrite_count > 0 ? static_cast<double>(overwrite_same_proc) / overwrite_count : 0;
    result.delete_same_process_fraction =
        explicit_count > 0 ? static_cast<double>(delete_same_proc) / explicit_count : 0;
    result.delete_opened_between_fraction =
        explicit_count > 0 ? static_cast<double>(delete_opened_between) / explicit_count : 0;
  }
  if (!overwrite_close_gap.empty()) {
    result.overwrite_close_gap_p75_ms = overwrite_close_gap.Percentile(0.75);
  }
  if (sizes.size() >= 3) {
    result.size_lifetime_correlation = PearsonCorrelation(sizes, lifetimes);
  }
  return result;
}

}  // namespace ntrace
