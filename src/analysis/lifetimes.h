// Figures 6-7 and section 6.3: lifetimes of newly created files, by
// deletion method.
//
// Three deletion paths exist in NT (section 6.3): (1) truncate-on-open of
// an existing file (the overwrite class, 37% of cases), (2) an explicit
// SetInformation(Disposition) delete (62%), and (3) the temporary-file
// attribute / delete-on-close (1%). The analyzer reconstructs per-path
// creation and death events from the trace and classifies each new file's
// end.

#ifndef SRC_ANALYSIS_LIFETIMES_H_
#define SRC_ANALYSIS_LIFETIMES_H_

#include <cstdint>
#include <vector>

#include "src/stats/descriptive.h"
#include "src/trace/trace_set.h"
#include "src/tracedb/instance_table.h"

namespace ntrace {

enum class DeletionMethod : uint8_t {
  kOverwrite,      // Truncate-on-open or supersede of an existing file.
  kExplicitDelete, // Delete disposition control operation.
  kTemporary,      // Delete-on-close / temporary attribute.
};

struct NewFileDeath {
  DeletionMethod method = DeletionMethod::kOverwrite;
  double lifetime_ms = 0;          // Creation -> death.
  double close_to_death_ms = 0;    // Close of the creating handle -> death.
  uint64_t size_at_death = 0;
  bool same_process = false;       // Death caused by the creating process.
  uint32_t opens_between = 0;      // Extra opens between creation and death.
};

struct LifetimeResult {
  std::vector<NewFileDeath> deaths;

  WeightedCdf overwrite_lifetime_ms;  // Figure 6, truncate/overwrite curve.
  WeightedCdf delete_lifetime_ms;     // Figure 6, explicit-delete curve.

  uint64_t new_files = 0;  // Files created during the trace.
  // Shares of deletion methods among observed deaths.
  double overwrite_share = 0;
  double explicit_share = 0;
  double temporary_share = 0;

  // Headline fractions.
  double died_within_4s_fraction = 0;        // Paper: ~80% within 4 s.
  double died_within_30s_fraction = 0;       // Sprite: 65-80% within 30 s.
  double overwritten_within_4ms_fraction = 0;   // Paper: ~75% of overwrites.
  double deleted_within_4s_fraction = 0;     // Paper: 72% of explicit deletes.
  double overwrite_close_gap_p75_ms = 0;     // Paper: 0.7 ms.
  double overwrite_same_process_fraction = 0;  // Paper: 94%.
  double delete_same_process_fraction = 0;     // Paper: 36%.
  double delete_opened_between_fraction = 0;   // Paper: 18%.

  // Figure 7: size-vs-lifetime correlation (paper: no correlation).
  double size_lifetime_correlation = 0;

  // Section 6.3 cache interaction, from cache stats: fraction of overwrite
  // purges that still held dirty pages (paper: 23%).
  double overwrite_with_dirty_fraction = 0;
};

class LifetimeAnalyzer {
 public:
  static LifetimeResult Analyze(const TraceSet& trace, const InstanceTable& instances);
};

}  // namespace ntrace

#endif  // SRC_ANALYSIS_LIFETIMES_H_
