// Table 2: user activity over 10-minute and 10-second intervals.
//
// "The tracing period is divided into 10-minute and 10-second intervals,
// and the number of active users and the throughput per user is averaged
// across those intervals ... A user and thus a system are considered to be
// active during an interval if there was any file system activity during
// that interval that could be attributed to the user" -- with the constant
// service-induced background activity used as the activity threshold
// (section 6.1). Throughput counts transferred bytes including the
// VM-originated executable paging the tracer deliberately recorded, but not
// the cache-manager-induced duplicates (section 3.3).

#ifndef SRC_ANALYSIS_USER_ACTIVITY_H_
#define SRC_ANALYSIS_USER_ACTIVITY_H_

#include <cstdint>

#include "src/stats/descriptive.h"
#include "src/trace/trace_set.h"

namespace ntrace {

struct UserActivityRow {
  double interval_seconds = 0;
  int max_active_users = 0;
  double avg_active_users = 0;
  double avg_active_users_sd = 0;
  // KB/s per active user within an interval.
  double avg_user_throughput_kbs = 0;
  double avg_user_throughput_sd = 0;
  double peak_user_throughput_kbs = 0;
  double peak_system_wide_kbs = 0;
};

struct UserActivityResult {
  UserActivityRow ten_minutes;
  UserActivityRow ten_seconds;
};

class UserActivityAnalyzer {
 public:
  // `background_threshold_bytes` is the per-interval byte floor attributed
  // to services; intervals at or below it do not make a user "active".
  static UserActivityResult Analyze(const TraceSet& trace,
                                    uint64_t background_threshold_bytes = 2048);
};

}  // namespace ntrace

#endif  // SRC_ANALYSIS_USER_ACTIVITY_H_
