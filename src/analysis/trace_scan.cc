#include "src/analysis/trace_scan.h"

#include "src/tracedb/dimensions.h"

namespace ntrace {

namespace {

// Streaming run state for one file object: the pending read and write chains.
struct RunState {
  uint64_t read_end = 0;
  uint32_t read_ops = 0;
  uint64_t read_bytes = 0;
  uint64_t write_end = 0;
  uint32_t write_ops = 0;
  uint64_t write_bytes = 0;
};

void EmitRead(TraceScan& out, RunState& s) {
  if (s.read_ops > 0) {
    const double bytes = static_cast<double>(s.read_bytes);
    out.read_runs_by_count.Add(bytes, 1.0);
    out.read_runs_by_bytes.Add(bytes, bytes);
    s.read_ops = 0;
    s.read_bytes = 0;
  }
}

void EmitWrite(TraceScan& out, RunState& s) {
  if (s.write_ops > 0) {
    const double bytes = static_cast<double>(s.write_bytes);
    out.write_runs_by_count.Add(bytes, 1.0);
    out.write_runs_by_bytes.Add(bytes, bytes);
    s.write_ops = 0;
    s.write_bytes = 0;
  }
}

}  // namespace

TraceScan TraceScan::Run(const TraceSet& trace) {
  TraceScan out;

  // (system_id << 32 | second) pairs with app-level activity. Seconds fit in
  // 32 bits for any simulated span under ~136 years.
  FlatMap<uint64_t, uint8_t> active_seconds;
  FlatMap<uint64_t, RunState> runs;

  for (const TraceRecord& r : trace.records) {
    const TraceEvent event = r.Event();

    // Flush users are collected over the full record stream (the section-9
    // flush-user analysis predates the paging skip below).
    if (event == TraceEvent::kIrpFlushBuffers) {
      out.flushed_files.emplace(r.file_object, uint8_t{1});
    }

    if (r.IsPagingIo()) {
      // Cc/Mm-originated transfer: feed the cache mix and move on; paging
      // I/O is excluded from the app-level aggregates below.
      if (event == TraceEvent::kIrpRead) {
        ++out.paging_reads;
        out.paging_read_bytes += r.length;
        if ((r.irp_flags & kIrpReadAhead) != 0) {
          ++out.readahead_records;
          out.readahead_bytes += r.length;
        }
      } else if (event == TraceEvent::kIrpWrite) {
        ++out.paging_writes;
        out.paging_write_bytes += r.length;
        if ((r.irp_flags & kIrpLazyWrite) != 0) {
          ++out.lazywrite_records;
          out.lazywrite_bytes += r.length;
        }
      }
      continue;
    }

    const uint64_t second = static_cast<uint64_t>(r.complete_ticks / SimDuration::kTicksPerSecond);
    active_seconds.emplace((static_cast<uint64_t>(r.system_id) << 32) | second, uint8_t{1});

    // Section 7: attribution to processes that take no direct user input.
    const std::string* pname = trace.ProcessNameOf(r.process_id);
    if (pname != nullptr) {
      ++out.attributed;
      if (ProcessDimension::Classify(*pname) != ProcessClass::kInteractive) {
        ++out.non_interactive;
      }
    }

    // Sequential runs: a transfer extends its chain when it starts where the
    // previous same-direction transfer ended; anything else (seek, direction
    // change handled per direction) closes the chain.
    if (IsDataTransfer(event)) {
      RunState& s = runs[r.file_object];
      if (IsWriteEvent(event)) {
        if (s.write_ops > 0 && r.offset != s.write_end) {
          EmitWrite(out, s);
        }
        ++s.write_ops;
        s.write_bytes += r.length;
        s.write_end = r.offset + r.length;
      } else {
        if (s.read_ops > 0 && r.offset != s.read_end) {
          EmitRead(out, s);
        }
        ++s.read_ops;
        s.read_bytes += r.length;
        s.read_end = r.offset + r.length;
      }
    }

    const double latency_us = r.Latency().ToMicrosF();
    const double size = static_cast<double>(r.length);

    switch (event) {
      case TraceEvent::kIrpRead:
      case TraceEvent::kFastIoRead: {
        ++out.reads;
        out.read_sizes.Add(size);
        if (r.length == 512 || r.length == 4096) {
          ++out.reads_512_or_4096;
        } else if (r.length >= 2 && r.length <= 8) {
          ++out.reads_small;
        } else if (r.length >= 48 * 1024) {
          ++out.reads_48k_plus;
        }
        if (NtError(r.Status()) || r.Status() == NtStatus::kEndOfFile) {
          ++out.read_failures;
        }
        if (event == TraceEvent::kFastIoRead) {
          ++out.fastio_reads;
          out.fastio_read_latency_us.Add(latency_us);
          out.fastio_read_size.Add(size);
        } else {
          ++out.irp_reads;
          out.irp_read_latency_us.Add(latency_us);
          out.irp_read_size.Add(size);
        }
        break;
      }
      case TraceEvent::kIrpWrite:
      case TraceEvent::kFastIoWrite:
        ++out.writes;
        out.write_sizes.Add(size);
        if (NtError(r.Status())) {
          ++out.write_failures;
        }
        if (event == TraceEvent::kFastIoWrite) {
          ++out.fastio_writes;
          out.fastio_write_latency_us.Add(latency_us);
          out.fastio_write_size.Add(size);
        } else {
          ++out.irp_writes;
          out.irp_write_latency_us.Add(latency_us);
          out.irp_write_size.Add(size);
        }
        break;
      case TraceEvent::kIrpCreate:
        ++out.opens;
        if (NtError(r.Status())) {
          ++out.open_failures;
          if (r.Status() == NtStatus::kObjectNameNotFound ||
              r.Status() == NtStatus::kObjectPathNotFound) {
            ++out.open_notfound;
          } else if (r.Status() == NtStatus::kObjectNameCollision) {
            ++out.open_collision;
          }
        }
        break;
      case TraceEvent::kIrpDirectoryControl:
        ++out.directory_ops;
        ++out.control_total;
        if (NtError(r.Status())) {
          ++out.control_failures;
        }
        break;
      case TraceEvent::kIrpFileSystemControl:
      case TraceEvent::kIrpDeviceControl:
        ++out.control_ops;
        ++out.control_total;
        if (static_cast<FsctlCode>(r.fsctl) == FsctlCode::kIsVolumeMounted) {
          ++out.volume_mounted_checks;
        }
        if (NtError(r.Status())) {
          ++out.control_failures;
        }
        break;
      case TraceEvent::kIrpQueryInformation:
      case TraceEvent::kIrpQueryVolumeInformation:
      case TraceEvent::kIrpFlushBuffers:
      case TraceEvent::kIrpLockControl:
      case TraceEvent::kFastIoQueryBasicInfo:
      case TraceEvent::kFastIoQueryStandardInfo:
        ++out.control_ops;
        ++out.control_total;
        if (NtError(r.Status())) {
          ++out.control_failures;
        }
        break;
      case TraceEvent::kIrpSetInformation:
        ++out.control_ops;
        ++out.control_total;
        if (static_cast<FileInfoClass>(r.info_class) == FileInfoClass::kEndOfFile) {
          ++out.seteof_ops;
        }
        if (NtError(r.Status())) {
          ++out.control_failures;
        }
        break;
      case TraceEvent::kFastIoReadNotPossible:
        ++out.read_fallbacks;
        break;
      case TraceEvent::kFastIoWriteNotPossible:
        ++out.write_fallbacks;
        break;
      default:
        break;
    }
  }

  // Close the still-open chains. FlatMap iteration order is unspecified, but
  // WeightedCdf sorts on Finalize, so the distributions are deterministic.
  for (auto& [file_object, s] : runs) {
    EmitRead(out, s);
    EmitWrite(out, s);
  }

  out.active_seconds = active_seconds.size();

  out.read_sizes.Finalize();
  out.write_sizes.Finalize();
  out.fastio_read_latency_us.Finalize();
  out.fastio_write_latency_us.Finalize();
  out.irp_read_latency_us.Finalize();
  out.irp_write_latency_us.Finalize();
  out.fastio_read_size.Finalize();
  out.fastio_write_size.Finalize();
  out.irp_read_size.Finalize();
  out.irp_write_size.Finalize();
  out.read_runs_by_count.Finalize();
  out.read_runs_by_bytes.Finalize();
  out.write_runs_by_count.Finalize();
  out.write_runs_by_bytes.Finalize();
  return out;
}

}  // namespace ntrace
