// Section 9: cache manager effectiveness -- hit rates, read-ahead
// sufficiency, write-behind behavior, and the open-option usage the paper
// finds underexploited.

#ifndef SRC_ANALYSIS_CACHE_ANALYSIS_H_
#define SRC_ANALYSIS_CACHE_ANALYSIS_H_

#include "src/analysis/trace_scan.h"
#include "src/mm/cache_manager.h"
#include "src/trace/trace_set.h"
#include "src/tracedb/instance_table.h"

namespace ntrace {

struct CacheAnalysisResult {
  // --- Read path ---
  double cached_read_fraction = 0;        // Paper: 60% of reads from cache.
  double single_io_session_fraction = 0;  // Paper: 31% of read sessions.
  double single_prefetch_fraction = 0;    // Paper: 92% of open-for-read cases.
  double sequential_hint_open_fraction = 0;  // Paper: ~5% of sequential opens.
  double read_cache_disabled_fraction = 0;   // Paper: 0.2% of data files.

  // --- Write path ---
  double write_through_fraction = 0;  // Of writing opens (paper: 1.4%).
  double flush_user_fraction = 0;     // Writing opens issuing flushes (paper: 4%).
  uint64_t lazy_write_irps = 0;
  uint64_t lazy_write_bytes = 0;
  double lazy_write_mean_run_bytes = 0;  // Paper: pages up to 64 KB runs.
  uint64_t seteof_on_close = 0;

  // --- Section 6.3 tie-ins ---
  double overwrite_with_dirty_fraction = 0;  // Paper: 23%.
  uint64_t temporary_pages_skipped = 0;
  double temporary_benefit_fraction = 0;  // Deleted new files that could have
                                          // used the attribute (paper: 25-35%).
};

class CacheAnalyzer {
 public:
  // The flush-user set comes from the shared single-pass scan (DESIGN.md
  // §9); everything else is session- or stats-derived.
  static CacheAnalysisResult Analyze(const TraceScan& scan, const InstanceTable& instances,
                                     const CacheStats& stats);

  // Convenience overload performing its own scan.
  static CacheAnalysisResult Analyze(const TraceSet& trace, const InstanceTable& instances,
                                     const CacheStats& stats);
};

}  // namespace ntrace

#endif  // SRC_ANALYSIS_CACHE_ANALYSIS_H_
