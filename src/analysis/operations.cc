#include "src/analysis/operations.h"

#include <algorithm>
#include <set>

#include "src/tracedb/dimensions.h"

namespace ntrace {

OperationResult OperationAnalyzer::Analyze(const TraceSet& trace,
                                           const InstanceTable& instances) {
  OperationResult out;

  uint64_t reads_512_4096 = 0;
  uint64_t reads_small = 0;
  uint64_t reads_large = 0;
  uint64_t read_failures = 0;
  uint64_t opens = 0;
  uint64_t open_failures = 0;
  uint64_t open_notfound = 0;
  uint64_t open_collision = 0;
  uint64_t control_total = 0;
  uint64_t control_failures = 0;
  uint64_t non_interactive = 0;
  uint64_t attributed = 0;
  std::set<std::pair<uint32_t, int64_t>> active_seconds;

  for (const TraceRecord& r : trace.records) {
    if (r.IsPagingIo()) {
      continue;
    }
    active_seconds.insert({r.system_id, r.complete_ticks / SimDuration::kTicksPerSecond});

    // Section 7: attribution to processes that take no direct user input.
    const std::string* pname = trace.ProcessNameOf(r.process_id);
    if (pname != nullptr) {
      ++attributed;
      if (ProcessDimension::Classify(*pname) != ProcessClass::kInteractive) {
        ++non_interactive;
      }
    }

    switch (r.Event()) {
      case TraceEvent::kIrpRead:
      case TraceEvent::kFastIoRead: {
        ++out.reads;
        out.read_sizes.Add(static_cast<double>(r.length));
        if (r.length == 512 || r.length == 4096) {
          ++reads_512_4096;
        } else if (r.length >= 2 && r.length <= 8) {
          ++reads_small;
        } else if (r.length >= 48 * 1024) {
          ++reads_large;
        }
        if (NtError(r.Status()) || r.Status() == NtStatus::kEndOfFile) {
          ++read_failures;
        }
        break;
      }
      case TraceEvent::kIrpWrite:
      case TraceEvent::kFastIoWrite:
        ++out.writes;
        out.write_sizes.Add(static_cast<double>(r.length));
        if (NtError(r.Status())) {
          ++out.write_failures;
        }
        break;
      case TraceEvent::kIrpCreate:
        ++opens;
        if (NtError(r.Status())) {
          ++open_failures;
          if (r.Status() == NtStatus::kObjectNameNotFound ||
              r.Status() == NtStatus::kObjectPathNotFound) {
            ++open_notfound;
          } else if (r.Status() == NtStatus::kObjectNameCollision) {
            ++open_collision;
          }
        }
        break;
      case TraceEvent::kIrpDirectoryControl:
        ++out.directory_ops;
        ++control_total;
        if (NtError(r.Status())) {
          ++control_failures;
        }
        break;
      case TraceEvent::kIrpFileSystemControl:
      case TraceEvent::kIrpDeviceControl:
        ++out.control_ops;
        ++control_total;
        if (static_cast<FsctlCode>(r.fsctl) == FsctlCode::kIsVolumeMounted) {
          ++out.volume_mounted_checks;
        }
        if (NtError(r.Status())) {
          ++control_failures;
        }
        break;
      case TraceEvent::kIrpQueryInformation:
      case TraceEvent::kIrpQueryVolumeInformation:
      case TraceEvent::kIrpFlushBuffers:
      case TraceEvent::kIrpLockControl:
      case TraceEvent::kFastIoQueryBasicInfo:
      case TraceEvent::kFastIoQueryStandardInfo:
        ++out.control_ops;
        ++control_total;
        if (NtError(r.Status())) {
          ++control_failures;
        }
        break;
      case TraceEvent::kIrpSetInformation:
        ++out.control_ops;
        ++control_total;
        if (static_cast<FileInfoClass>(r.info_class) == FileInfoClass::kEndOfFile) {
          ++out.seteof_ops;
        }
        if (NtError(r.Status())) {
          ++control_failures;
        }
        break;
      default:
        break;
    }
  }

  out.read_sizes.Finalize();
  out.write_sizes.Finalize();
  if (out.reads > 0) {
    out.reads_512_or_4096_fraction = static_cast<double>(reads_512_4096) / out.reads;
    out.reads_small_fraction = static_cast<double>(reads_small) / out.reads;
    out.reads_48k_plus_fraction = static_cast<double>(reads_large) / out.reads;
    out.read_failure_fraction = static_cast<double>(read_failures) / out.reads;
  }
  if (opens > 0) {
    out.open_failure_fraction = static_cast<double>(open_failures) / opens;
  }
  if (open_failures > 0) {
    out.open_notfound_share = static_cast<double>(open_notfound) / open_failures;
    out.open_collision_share = static_cast<double>(open_collision) / open_failures;
  }
  if (control_total > 0) {
    out.control_failure_fraction = static_cast<double>(control_failures) / control_total;
  }
  if (attributed > 0) {
    out.non_interactive_access_fraction = static_cast<double>(non_interactive) / attributed;
  }
  if (!active_seconds.empty()) {
    out.volume_checks_per_active_second =
        static_cast<double>(out.volume_mounted_checks) / active_seconds.size();
  }

  // --- Per-session statistics -------------------------------------------------
  uint64_t successful_opens = 0;
  uint64_t control_only = 0;
  uint64_t data_sessions = 0;
  uint64_t batch_sessions = 0;
  for (const Instance& s : instances.rows()) {
    if (s.open_failed) {
      continue;
    }
    ++successful_opens;
    if (!s.HasData()) {
      ++control_only;
      continue;
    }
    ++data_sessions;
    // Follow-up gaps within the session (complete -> next start).
    int64_t last_read_end = 0;
    int64_t last_write_end = 0;
    for (const RwOp& op : s.ops) {
      if (op.write) {
        if (last_write_end > 0 && op.start_ticks >= last_write_end) {
          out.write_gap_us.Add(SimDuration(op.start_ticks - last_write_end).ToMicrosF());
        }
        last_write_end = op.complete_ticks;
      } else {
        if (last_read_end > 0 && op.start_ticks >= last_read_end) {
          out.read_gap_us.Add(SimDuration(op.start_ticks - last_read_end).ToMicrosF());
        }
        last_read_end = op.complete_ticks;
      }
    }
    // "In 70% of the file opens, read/write actions were performed in batch
    // form, and the file was closed again": the session ends within 100 ms
    // of its last transfer.
    if (s.cleanup_time > 0 && !s.ops.empty()) {
      const int64_t last_op = s.ops.back().complete_ticks;
      if (s.cleanup_time - last_op <= SimDuration::Millis(100).ticks()) {
        ++batch_sessions;
      }
    }
  }
  out.read_gap_us.Finalize();
  out.write_gap_us.Finalize();
  if (!out.read_gap_us.empty()) {
    out.read_gap_p80_us = out.read_gap_us.Percentile(0.80);
  }
  if (!out.write_gap_us.empty()) {
    out.write_gap_p80_us = out.write_gap_us.Percentile(0.80);
  }
  if (successful_opens > 0) {
    out.control_only_open_fraction = static_cast<double>(control_only) / successful_opens;
  }
  if (data_sessions > 0) {
    out.batch_session_fraction = static_cast<double>(batch_sessions) / data_sessions;
  }
  return out;
}

}  // namespace ntrace
