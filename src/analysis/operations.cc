#include "src/analysis/operations.h"

namespace ntrace {

OperationResult OperationAnalyzer::Analyze(const TraceSet& trace,
                                           const InstanceTable& instances) {
  return Analyze(TraceScan::Run(trace), instances);
}

OperationResult OperationAnalyzer::Analyze(const TraceScan& scan,
                                           const InstanceTable& instances) {
  OperationResult out;

  // Per-record aggregates come straight from the shared single-pass scan.
  out.reads = scan.reads;
  out.writes = scan.writes;
  out.read_sizes = scan.read_sizes;
  out.write_sizes = scan.write_sizes;
  out.write_failures = scan.write_failures;
  out.directory_ops = scan.directory_ops;
  out.control_ops = scan.control_ops;
  out.volume_mounted_checks = scan.volume_mounted_checks;
  out.seteof_ops = scan.seteof_ops;
  if (scan.reads > 0) {
    out.reads_512_or_4096_fraction = static_cast<double>(scan.reads_512_or_4096) / scan.reads;
    out.reads_small_fraction = static_cast<double>(scan.reads_small) / scan.reads;
    out.reads_48k_plus_fraction = static_cast<double>(scan.reads_48k_plus) / scan.reads;
    out.read_failure_fraction = static_cast<double>(scan.read_failures) / scan.reads;
  }
  if (scan.opens > 0) {
    out.open_failure_fraction = static_cast<double>(scan.open_failures) / scan.opens;
  }
  if (scan.open_failures > 0) {
    out.open_notfound_share = static_cast<double>(scan.open_notfound) / scan.open_failures;
    out.open_collision_share = static_cast<double>(scan.open_collision) / scan.open_failures;
  }
  if (scan.control_total > 0) {
    out.control_failure_fraction =
        static_cast<double>(scan.control_failures) / scan.control_total;
  }
  if (scan.attributed > 0) {
    out.non_interactive_access_fraction =
        static_cast<double>(scan.non_interactive) / scan.attributed;
  }
  if (scan.active_seconds > 0) {
    out.volume_checks_per_active_second =
        static_cast<double>(out.volume_mounted_checks) / scan.active_seconds;
  }

  // --- Per-session statistics -------------------------------------------------
  uint64_t successful_opens = 0;
  uint64_t control_only = 0;
  uint64_t data_sessions = 0;
  uint64_t batch_sessions = 0;
  for (const Instance& s : instances.rows()) {
    if (s.open_failed) {
      continue;
    }
    ++successful_opens;
    if (!s.HasData()) {
      ++control_only;
      continue;
    }
    ++data_sessions;
    // Follow-up gaps within the session (complete -> next start).
    int64_t last_read_end = 0;
    int64_t last_write_end = 0;
    for (const RwOp& op : s.ops) {
      if (op.write) {
        if (last_write_end > 0 && op.start_ticks >= last_write_end) {
          out.write_gap_us.Add(SimDuration(op.start_ticks - last_write_end).ToMicrosF());
        }
        last_write_end = op.complete_ticks;
      } else {
        if (last_read_end > 0 && op.start_ticks >= last_read_end) {
          out.read_gap_us.Add(SimDuration(op.start_ticks - last_read_end).ToMicrosF());
        }
        last_read_end = op.complete_ticks;
      }
    }
    // "In 70% of the file opens, read/write actions were performed in batch
    // form, and the file was closed again": the session ends within 100 ms
    // of its last transfer.
    if (s.cleanup_time > 0 && !s.ops.empty()) {
      const int64_t last_op = s.ops.back().complete_ticks;
      if (s.cleanup_time - last_op <= SimDuration::Millis(100).ticks()) {
        ++batch_sessions;
      }
    }
  }
  out.read_gap_us.Finalize();
  out.write_gap_us.Finalize();
  if (!out.read_gap_us.empty()) {
    out.read_gap_p80_us = out.read_gap_us.Percentile(0.80);
  }
  if (!out.write_gap_us.empty()) {
    out.write_gap_p80_us = out.write_gap_us.Percentile(0.80);
  }
  if (successful_opens > 0) {
    out.control_only_open_fraction = static_cast<double>(control_only) / successful_opens;
  }
  if (data_sessions > 0) {
    out.batch_session_fraction = static_cast<double>(batch_sessions) / data_sessions;
  }
  return out;
}

}  // namespace ntrace
