#include "src/analysis/patterns.h"

namespace ntrace {

TransferPattern ClassifyPattern(const Instance& session, uint32_t fuzz_mask) {
  const std::vector<RwOp>& ops = session.ops;
  if (ops.empty()) {
    return TransferPattern::kRandom;
  }
  const uint64_t mask = ~static_cast<uint64_t>(fuzz_mask);
  bool sequential = true;
  uint64_t expected = ops.front().offset;
  uint64_t total = 0;
  for (const RwOp& op : ops) {
    if ((op.offset & mask) != (expected & mask)) {
      sequential = false;
      break;
    }
    expected = op.offset + op.length;
    total += op.length;
  }
  if (!sequential) {
    return TransferPattern::kRandom;
  }
  const bool from_start = ops.front().offset == 0;
  // "Transfers fewer bytes than the size of the file at close time" makes a
  // sequential session partial; max_file_size approximates size-at-close.
  const bool covered = total >= session.max_file_size && session.max_file_size > 0;
  if (from_start && covered) {
    return TransferPattern::kWholeFile;
  }
  return TransferPattern::kOtherSequential;
}

UsageMode ClassifyUsage(const Instance& session) {
  if (session.ReadWrite()) {
    return UsageMode::kReadWrite;
  }
  return session.WriteOnly() ? UsageMode::kWriteOnly : UsageMode::kReadOnly;
}

std::vector<SequentialRun> ExtractRuns(const Instance& session) {
  std::vector<SequentialRun> runs;
  SequentialRun current;
  uint64_t expected = 0;
  bool active = false;
  for (const RwOp& op : session.ops) {
    const bool continues = active && op.write == current.write && op.offset == expected;
    if (!continues) {
      if (active && current.bytes > 0) {
        runs.push_back(current);
      }
      current = SequentialRun{0, 0, op.write};
      active = true;
    }
    current.bytes += op.length;
    ++current.ops;
    expected = op.offset + op.length;
  }
  if (active && current.bytes > 0) {
    runs.push_back(current);
  }
  return runs;
}

}  // namespace ntrace
