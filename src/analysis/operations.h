// Section 8 operational characteristics: read/write request sizes and
// inter-arrival bursts, control/directory-operation dominance, error mix,
// and the process attribution of section 7.

#ifndef SRC_ANALYSIS_OPERATIONS_H_
#define SRC_ANALYSIS_OPERATIONS_H_

#include "src/analysis/trace_scan.h"
#include "src/stats/descriptive.h"
#include "src/trace/trace_set.h"
#include "src/tracedb/instance_table.h"

namespace ntrace {

struct OperationResult {
  // --- Section 8.2 ---
  uint64_t reads = 0;
  uint64_t writes = 0;
  double reads_512_or_4096_fraction = 0;  // Paper: 59%.
  double reads_small_fraction = 0;        // 2-8 bytes.
  double reads_48k_plus_fraction = 0;
  WeightedCdf read_sizes;
  WeightedCdf write_sizes;
  // Follow-up gaps between successive reads/writes within one session.
  WeightedCdf read_gap_us;
  WeightedCdf write_gap_us;
  double read_gap_p80_us = 0;   // Paper: 80% within 90 us.
  double write_gap_p80_us = 0;  // Paper: 80% within 30 us.
  // Fraction of data opens whose transfers completed in one batch (the
  // session closed right after; paper: 70%).
  double batch_session_fraction = 0;

  // --- Section 8.3 ---
  double control_only_open_fraction = 0;  // Paper: 74%.
  uint64_t control_ops = 0;
  uint64_t directory_ops = 0;
  uint64_t volume_mounted_checks = 0;
  double volume_checks_per_active_second = 0;  // Paper: up to 40/s.
  uint64_t seteof_ops = 0;

  // --- Section 8.4 ---
  double open_failure_fraction = 0;         // Paper: 12%.
  double open_notfound_share = 0;           // Of failures; paper: 52%.
  double open_collision_share = 0;          // Paper: 31%.
  double control_failure_fraction = 0;      // Paper: 8%.
  double read_failure_fraction = 0;         // Paper: 0.2%.
  uint64_t write_failures = 0;              // Paper: none.

  // --- Section 7 ---
  double non_interactive_access_fraction = 0;  // Paper: > 92%.
};

class OperationAnalyzer {
 public:
  // Consumes the shared single-pass scan (DESIGN.md §9); only the
  // session-level statistics still walk the instance table here.
  static OperationResult Analyze(const TraceScan& scan, const InstanceTable& instances);

  // Convenience overload performing its own scan.
  static OperationResult Analyze(const TraceSet& trace, const InstanceTable& instances);
};

}  // namespace ntrace

#endif  // SRC_ANALYSIS_OPERATIONS_H_
