#include "src/analysis/sessions.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/base/format.h"

namespace ntrace {
namespace {

bool IsNetworkPath(const std::string& path) {
  return path.size() >= 2 && path[0] == '\\' && path[1] == '\\';
}

}  // namespace

SessionResult SessionAnalyzer::Analyze(const TraceSet& trace, const InstanceTable& instances) {
  SessionResult result;

  // --- Figures 5 and 12, close gaps, reuse -----------------------------------
  std::unordered_map<std::string, int> readonly_opens;
  std::unordered_map<std::string, int> writeonly_opens;
  // Per path, the time-ordered (open_complete, had_reads, write_only) list
  // used for the "write-only file later re-opened for reading" statistic.
  struct PathOpen {
    int64_t at;
    bool had_reads;
    bool write_only;
  };
  std::unordered_map<std::string, std::vector<PathOpen>> path_opens;

  for (const Instance& s : instances.rows()) {
    if (s.open_failed || s.cleanup_time == 0) {
      continue;
    }
    const double session_ms = SimDuration(s.cleanup_time - s.open_complete).ToMillisF();
    result.session_all_ms.Add(session_ms);
    if (s.HasData()) {
      result.session_data_ms.Add(session_ms);
      result.open_time_all_ms.Add(session_ms);
      (IsNetworkPath(s.path) ? result.open_time_network_ms : result.open_time_local_ms)
          .Add(session_ms);
    } else {
      result.session_control_ms.Add(session_ms);
    }
    if (s.close_time > s.cleanup_time) {
      const double gap_us = SimDuration(s.close_time - s.cleanup_time).ToMicrosF();
      (s.writes() > 0 ? result.close_gap_write_us : result.close_gap_read_us).Add(gap_us);
    }
    if (s.ReadOnly()) {
      ++readonly_opens[s.path];
    } else if (s.WriteOnly()) {
      ++writeonly_opens[s.path];
    }
    if (s.HasData()) {
      path_opens[s.path].push_back(PathOpen{s.open_complete, s.reads() > 0, s.WriteOnly()});
    }
  }

  result.open_time_all_ms.Finalize();
  result.open_time_local_ms.Finalize();
  result.open_time_network_ms.Finalize();
  result.session_all_ms.Finalize();
  result.session_control_ms.Finalize();
  result.session_data_ms.Finalize();
  result.close_gap_read_us.Finalize();
  result.close_gap_write_us.Finalize();

  if (!result.open_time_all_ms.empty()) {
    result.data_open_p75_ms = result.open_time_all_ms.Percentile(0.75);
  }
  if (!result.session_all_ms.empty()) {
    result.session_p40_ms = result.session_all_ms.Percentile(0.40);
    result.session_p90_ms = result.session_all_ms.Percentile(0.90);
  }

  {
    int reopened = 0;
    for (const auto& [_, n] : readonly_opens) {
      if (n > 1) {
        ++reopened;
      }
    }
    result.readonly_reopen_fraction =
        readonly_opens.empty() ? 0 : static_cast<double>(reopened) / readonly_opens.size();
    int later_read = 0;
    for (const auto& [path, opens] : writeonly_opens) {
      (void)opens;
      auto it = path_opens.find(path);
      if (it == path_opens.end()) {
        continue;
      }
      // Was any write-only open of this path followed by a reading open?
      bool found = false;
      for (size_t i = 0; i < it->second.size() && !found; ++i) {
        if (!it->second[i].write_only) {
          continue;
        }
        for (size_t j = i + 1; j < it->second.size(); ++j) {
          if (it->second[j].had_reads && it->second[j].at >= it->second[i].at) {
            found = true;
            break;
          }
        }
      }
      if (found) {
        ++later_read;
      }
    }
    result.writeonly_reopened_for_read_fraction =
        writeonly_opens.empty() ? 0
                                : static_cast<double>(later_read) / writeonly_opens.size();
  }

  // --- Figure 11: open inter-arrivals (per system, data vs control) ----------
  // Classify each instance once, then walk create records in time order.
  std::unordered_map<uint64_t, bool> is_data_open;
  for (const Instance& s : instances.rows()) {
    is_data_open[s.file_object] = s.HasData();
  }
  std::map<uint32_t, int64_t> last_open_by_system;
  std::set<std::pair<uint32_t, int64_t>> seconds_with_open;
  int64_t max_second = 0;
  for (const TraceRecord& r : trace.records) {
    max_second = std::max(max_second, r.complete_ticks / SimDuration::kTicksPerSecond);
    if (r.Event() != TraceEvent::kIrpCreate) {
      continue;
    }
    seconds_with_open.insert({r.system_id, r.start_ticks / SimDuration::kTicksPerSecond});
    auto it = last_open_by_system.find(r.system_id);
    if (it != last_open_by_system.end()) {
      const double gap_ms = SimDuration(r.start_ticks - it->second).ToMillisF();
      auto data_it = is_data_open.find(r.file_object);
      const bool data = data_it != is_data_open.end() && data_it->second;
      (data ? result.open_interarrival_io_ms : result.open_interarrival_control_ms)
          .Add(gap_ms);
    }
    last_open_by_system[r.system_id] = r.start_ticks;
  }
  result.open_interarrival_io_ms.Finalize();
  result.open_interarrival_control_ms.Finalize();

  // Combined percentiles over both classes.
  {
    WeightedCdf combined;
    for (const auto& [v, w] : result.open_interarrival_io_ms.samples()) {
      combined.Add(v, w);
    }
    for (const auto& [v, w] : result.open_interarrival_control_ms.samples()) {
      combined.Add(v, w);
    }
    combined.Finalize();
    if (!combined.empty()) {
      result.interarrival_p40_ms = combined.Percentile(0.40);
      result.interarrival_p90_ms = combined.Percentile(0.90);
    }
  }

  if (max_second > 0 && !last_open_by_system.empty()) {
    const double total_system_seconds =
        static_cast<double>(max_second) * static_cast<double>(last_open_by_system.size());
    result.seconds_with_opens_fraction =
        static_cast<double>(seconds_with_open.size()) / total_system_seconds;
  }
  return result;
}

}  // namespace ntrace
