#include "src/analysis/fastio.h"

namespace ntrace {

FastIoResultAnalysis FastIoAnalyzer::Analyze(const TraceSet& trace) {
  FastIoResultAnalysis out;
  uint64_t fastio_reads = 0;
  uint64_t irp_reads = 0;
  uint64_t fastio_writes = 0;
  uint64_t irp_writes = 0;

  for (const TraceRecord& r : trace.records) {
    if (r.IsPagingIo()) {
      continue;
    }
    const double latency_us = r.Latency().ToMicrosF();
    const double size = static_cast<double>(r.length);
    switch (r.Event()) {
      case TraceEvent::kFastIoRead:
        ++fastio_reads;
        out.fastio_read_latency_us.Add(latency_us);
        out.fastio_read_size.Add(size);
        break;
      case TraceEvent::kFastIoWrite:
        ++fastio_writes;
        out.fastio_write_latency_us.Add(latency_us);
        out.fastio_write_size.Add(size);
        break;
      case TraceEvent::kIrpRead:
        ++irp_reads;
        out.irp_read_latency_us.Add(latency_us);
        out.irp_read_size.Add(size);
        break;
      case TraceEvent::kIrpWrite:
        ++irp_writes;
        out.irp_write_latency_us.Add(latency_us);
        out.irp_write_size.Add(size);
        break;
      case TraceEvent::kFastIoReadNotPossible:
        ++out.read_fallbacks;
        break;
      case TraceEvent::kFastIoWriteNotPossible:
        ++out.write_fallbacks;
        break;
      default:
        break;
    }
  }
  out.fastio_read_latency_us.Finalize();
  out.fastio_write_latency_us.Finalize();
  out.irp_read_latency_us.Finalize();
  out.irp_write_latency_us.Finalize();
  out.fastio_read_size.Finalize();
  out.fastio_write_size.Finalize();
  out.irp_read_size.Finalize();
  out.irp_write_size.Finalize();

  const uint64_t reads = fastio_reads + irp_reads;
  const uint64_t writes = fastio_writes + irp_writes;
  out.fastio_read_share = reads > 0 ? static_cast<double>(fastio_reads) / reads : 0;
  out.fastio_write_share = writes > 0 ? static_cast<double>(fastio_writes) / writes : 0;
  return out;
}

}  // namespace ntrace
