#include "src/analysis/fastio.h"

namespace ntrace {

FastIoResultAnalysis FastIoAnalyzer::Analyze(const TraceSet& trace) {
  return Analyze(TraceScan::Run(trace));
}

FastIoResultAnalysis FastIoAnalyzer::Analyze(const TraceScan& scan) {
  FastIoResultAnalysis out;
  out.fastio_read_latency_us = scan.fastio_read_latency_us;
  out.fastio_write_latency_us = scan.fastio_write_latency_us;
  out.irp_read_latency_us = scan.irp_read_latency_us;
  out.irp_write_latency_us = scan.irp_write_latency_us;
  out.fastio_read_size = scan.fastio_read_size;
  out.fastio_write_size = scan.fastio_write_size;
  out.irp_read_size = scan.irp_read_size;
  out.irp_write_size = scan.irp_write_size;
  out.read_fallbacks = scan.read_fallbacks;
  out.write_fallbacks = scan.write_fallbacks;

  const uint64_t reads = scan.fastio_reads + scan.irp_reads;
  const uint64_t writes = scan.fastio_writes + scan.irp_writes;
  out.fastio_read_share = reads > 0 ? static_cast<double>(scan.fastio_reads) / reads : 0;
  out.fastio_write_share = writes > 0 ? static_cast<double>(scan.fastio_writes) / writes : 0;
  return out;
}

}  // namespace ntrace
