#include "src/analysis/burstiness.h"

#include <algorithm>
#include <map>

#include "src/base/rng.h"
#include "src/stats/distributions.h"
#include "src/tracedb/instance_table.h"

namespace ntrace {
namespace {

uint32_t BusiestSystem(const TraceSet& trace) {
  std::map<uint32_t, uint64_t> counts;
  for (const TraceRecord& r : trace.records) {
    if (r.Event() == TraceEvent::kIrpCreate) {
      ++counts[r.system_id];
    }
  }
  uint32_t best = 0;
  uint64_t best_count = 0;
  for (const auto& [id, n] : counts) {
    if (n > best_count) {
      best = id;
      best_count = n;
    }
  }
  return best;
}

double Cv(const std::vector<double>& v) {
  StreamingStats s;
  for (double x : v) {
    s.Add(x);
  }
  return s.mean() > 0 ? s.stddev() / s.mean() : 0;
}

std::vector<double> Bucketize(const std::vector<double>& arrivals_s, double interval) {
  IntervalSeries series(interval);
  for (double t : arrivals_s) {
    series.AddEvent(t);
  }
  return series.Dense();
}

}  // namespace

std::vector<double> BurstinessAnalyzer::OpenInterarrivalsMs(const TraceSet& trace,
                                                            uint32_t system_id) {
  if (system_id == 0) {
    system_id = BusiestSystem(trace);
  }
  std::vector<double> gaps;
  int64_t last = -1;
  for (const TraceRecord& r : trace.records) {
    if (r.Event() != TraceEvent::kIrpCreate || r.system_id != system_id) {
      continue;
    }
    if (last >= 0 && r.start_ticks > last) {
      gaps.push_back(SimDuration(r.start_ticks - last).ToMillisF());
    }
    last = r.start_ticks;
  }
  return gaps;
}

ArrivalViews BurstinessAnalyzer::BuildArrivalViews(const TraceSet& trace, uint32_t system_id,
                                                   uint64_t seed) {
  if (system_id == 0) {
    system_id = BusiestSystem(trace);
  }
  std::vector<double> arrivals;
  for (const TraceRecord& r : trace.records) {
    if (r.Event() == TraceEvent::kIrpCreate && r.system_id == system_id) {
      arrivals.push_back(SimTime(r.start_ticks).ToSecondsF());
    }
  }
  ArrivalViews views;
  if (arrivals.size() < 2) {
    return views;
  }
  const double span = arrivals.back() - arrivals.front();
  const double base = arrivals.front();
  for (double& t : arrivals) {
    t -= base;
  }
  views.trace_1s = Bucketize(arrivals, 1.0);
  views.trace_10s = Bucketize(arrivals, 10.0);
  views.trace_100s = Bucketize(arrivals, 100.0);

  // Poisson synthesis with the same mean rate over the same span.
  const double rate = static_cast<double>(arrivals.size()) / std::max(span, 1.0);
  Rng rng(seed);
  PoissonProcess process(rate);
  std::vector<double> poisson;
  double t = 0.0;
  while (t < span) {
    t += process.NextGapSeconds(rng);
    if (t < span) {
      poisson.push_back(t);
    }
  }
  views.poisson_1s = Bucketize(poisson, 1.0);
  views.poisson_10s = Bucketize(poisson, 10.0);
  views.poisson_100s = Bucketize(poisson, 100.0);

  views.trace_cv[0] = Cv(views.trace_1s);
  views.trace_cv[1] = Cv(views.trace_10s);
  views.trace_cv[2] = Cv(views.trace_100s);
  views.poisson_cv[0] = Cv(views.poisson_1s);
  views.poisson_cv[1] = Cv(views.poisson_10s);
  views.poisson_cv[2] = Cv(views.poisson_100s);
  return views;
}

TailDiagnostics BurstinessAnalyzer::Diagnose(std::string quantity, std::vector<double> sample) {
  TailDiagnostics diag;
  diag.quantity = std::move(quantity);
  sample.erase(std::remove_if(sample.begin(), sample.end(), [](double v) { return v <= 0.0; }),
               sample.end());
  diag.samples = sample.size();
  if (sample.size() < 16) {
    return diag;
  }
  diag.hill_alpha = HillEstimator::EstimateWithTailFraction(sample, 0.05);
  diag.llcd = BuildLlcd(sample, 0.1);
  diag.qq_normal = QqAgainstNormal(sample);
  diag.qq_pareto = QqAgainstPareto(sample);
  return diag;
}

std::vector<TailDiagnostics> BurstinessAnalyzer::SweepAll(const TraceSet& trace) {
  const InstanceTable instances = InstanceTable::Build(trace);
  std::vector<double> interarrivals = OpenInterarrivalsMs(trace);
  std::vector<double> holding_ms;
  std::vector<double> session_bytes;
  std::vector<double> file_sizes;
  for (const Instance& s : instances.rows()) {
    if (s.open_failed || s.cleanup_time == 0) {
      continue;
    }
    holding_ms.push_back(SimDuration(s.cleanup_time - s.open_complete).ToMillisF());
    if (s.HasData()) {
      session_bytes.push_back(static_cast<double>(s.bytes_read + s.bytes_written));
      file_sizes.push_back(static_cast<double>(s.max_file_size));
    }
  }
  std::vector<double> request_sizes;
  for (const TraceRecord& r : trace.records) {
    if (IsDataTransfer(r.Event()) && !r.IsPagingIo() && r.returned > 0) {
      request_sizes.push_back(static_cast<double>(r.returned));
    }
  }

  std::vector<TailDiagnostics> out;
  out.push_back(Diagnose("open inter-arrival time (ms)", std::move(interarrivals)));
  out.push_back(Diagnose("session holding time (ms)", std::move(holding_ms)));
  out.push_back(Diagnose("bytes per open-close session", std::move(session_bytes)));
  out.push_back(Diagnose("accessed file size (bytes)", std::move(file_sizes)));
  out.push_back(Diagnose("read/write request size (bytes)", std::move(request_sizes)));
  return out;
}

}  // namespace ntrace
