// Console reporting helpers shared by the bench binaries: paper-vs-measured
// rows, CDF series tables, and figure-style point dumps.

#ifndef SRC_ANALYSIS_REPORT_H_
#define SRC_ANALYSIS_REPORT_H_

#include <string>
#include <vector>

#include "src/stats/descriptive.h"
#include "src/stats/tails.h"
#include "src/trace/integrity.h"

namespace ntrace {

// Accumulates "metric | paper | measured | note" rows and renders them.
class ComparisonReport {
 public:
  explicit ComparisonReport(std::string title);

  void AddRow(const std::string& metric, const std::string& paper_value,
              const std::string& measured_value, const std::string& note = "");
  void AddPercent(const std::string& metric, double paper_pct, double measured_fraction,
                  const std::string& note = "");
  void AddValue(const std::string& metric, const std::string& paper_value, double measured,
                const std::string& note = "");

  // Renders the report to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a CDF as "value  cumulative%" rows at log-spaced probe points.
void PrintCdfSeries(const std::string& title, const WeightedCdf& cdf,
                    const std::vector<double>& probe_points, const std::string& unit);

// Probe points: log-spaced from lo to hi inclusive, points per decade.
std::vector<double> LogProbePoints(double lo, double hi, int per_decade = 2);

// Prints an LLCD series (figure-10 style) plus the fitted slope.
void PrintLlcd(const std::string& title, const LlcdSeries& series, size_t max_rows = 20);

// Prints side-by-side per-interval counts (figure-8 style), decimated.
void PrintArrivalComparison(const std::string& title, const std::vector<double>& trace_counts,
                            const std::vector<double>& poisson_counts, size_t max_rows = 16);

// Prints the per-system collection-pipeline accounting plus a totals row;
// the final column flags any system whose records are not fully accounted.
void PrintIntegrityReport(const IntegrityReport& report);

}  // namespace ntrace

#endif  // SRC_ANALYSIS_REPORT_H_
