#include "src/analysis/snapshot_analysis.h"

#include <algorithm>
#include <unordered_map>

#include "src/base/format.h"

namespace ntrace {

std::vector<std::string> SnapshotAnalyzer::RecordPaths(const Snapshot& snapshot) {
  std::vector<std::string> paths;
  paths.reserve(snapshot.records.size());
  std::vector<std::string> stack;
  for (const SnapshotRecord& r : snapshot.records) {
    stack.resize(r.depth);
    std::string path;
    for (const std::string& part : stack) {
      if (!part.empty()) {
        path += part;
        path += '\\';
      }
    }
    path += r.name;
    paths.push_back(path);
    if (r.directory) {
      stack.push_back(r.name);
    }
  }
  return paths;
}

ContentSummary SnapshotAnalyzer::SummarizeContent(const Snapshot& snapshot) {
  ContentSummary out;
  out.fullness = snapshot.capacity_bytes > 0
                     ? static_cast<double>(snapshot.used_bytes) / snapshot.capacity_bytes
                     : 0;
  const std::vector<std::string> paths = RecordPaths(snapshot);

  std::array<uint64_t, kNumFileCategories> bytes{};
  std::array<uint64_t, kNumFileCategories> counts{};
  uint64_t total_bytes = 0;
  uint64_t profile_files = 0;
  uint64_t anomalies = 0;

  for (size_t i = 0; i < snapshot.records.size(); ++i) {
    const SnapshotRecord& r = snapshot.records[i];
    if (r.directory) {
      ++out.directories;
      continue;
    }
    ++out.files;
    total_bytes += r.size;
    out.file_sizes.Add(static_cast<double>(r.size));
    const FileCategory cat = FileTypeDimension::CategoryOfExtension(PathExtension(r.name));
    bytes[static_cast<size_t>(cat)] += r.size;
    ++counts[static_cast<size_t>(cat)];
    const std::string lower = AsciiLower(paths[i]);
    if (lower.find("profiles\\") != std::string::npos) {
      ++profile_files;
      if (lower.find("temporary internet files") != std::string::npos) {
        ++out.web_cache_files;
        out.web_cache_bytes += r.size;
      }
    }
    if (r.creation_time.ticks() != 0 && r.last_access_time.ticks() != 0 &&
        r.creation_time > r.last_access_time) {
      ++anomalies;
    }
  }
  out.file_sizes.Finalize();
  if (total_bytes > 0) {
    for (size_t c = 0; c < bytes.size(); ++c) {
      out.bytes_share[c] = static_cast<double>(bytes[c]) / total_bytes;
    }
  }
  if (out.files > 0) {
    for (size_t c = 0; c < counts.size(); ++c) {
      out.count_share[c] = static_cast<double>(counts[c]) / out.files;
    }
    out.profile_file_share = static_cast<double>(profile_files) / out.files;
    out.creation_after_access_fraction = static_cast<double>(anomalies) / out.files;
  }
  return out;
}

ChurnSummary SnapshotAnalyzer::AnalyzeChurn(const SnapshotSeries& series) {
  ChurnSummary out;
  uint64_t profile_changes = 0;
  uint64_t cache_changes = 0;
  uint64_t all_changes = 0;

  for (size_t i = 1; i < series.snapshots.size(); ++i) {
    const Snapshot& prev = series.snapshots[i - 1];
    const Snapshot& curr = series.snapshots[i];
    const std::vector<std::string> prev_paths = RecordPaths(prev);
    const std::vector<std::string> curr_paths = RecordPaths(curr);

    std::unordered_map<std::string, const SnapshotRecord*> prev_map;
    for (size_t j = 0; j < prev.records.size(); ++j) {
      if (!prev.records[j].directory) {
        prev_map.emplace(AsciiLower(prev_paths[j]), &prev.records[j]);
      }
    }
    uint64_t day_changes = 0;
    std::unordered_map<std::string, bool> seen;
    for (size_t j = 0; j < curr.records.size(); ++j) {
      if (curr.records[j].directory) {
        continue;
      }
      const std::string key = AsciiLower(curr_paths[j]);
      seen.emplace(key, true);
      auto it = prev_map.find(key);
      bool changed = false;
      if (it == prev_map.end()) {
        ++out.total_added;
        changed = true;
      } else if (it->second->size != curr.records[j].size ||
                 it->second->last_write_time != curr.records[j].last_write_time) {
        ++out.total_modified;
        changed = true;
      }
      if (changed) {
        ++day_changes;
        ++all_changes;
        if (key.find("profiles\\") != std::string::npos) {
          ++profile_changes;
          if (key.find("temporary internet files") != std::string::npos) {
            ++cache_changes;
          }
        }
      }
    }
    for (const auto& [key, rec] : prev_map) {
      (void)rec;
      if (seen.count(key) == 0) {
        ++out.total_removed;
        ++day_changes;
        ++all_changes;
        if (key.find("profiles\\") != std::string::npos) {
          ++profile_changes;
          if (key.find("temporary internet files") != std::string::npos) {
            ++cache_changes;
          }
        }
      }
    }
    out.files_changed_per_day.Add(static_cast<double>(day_changes));
  }
  if (all_changes > 0) {
    out.profile_change_share = static_cast<double>(profile_changes) / all_changes;
  }
  if (profile_changes > 0) {
    out.web_cache_change_share = static_cast<double>(cache_changes) / profile_changes;
  }
  return out;
}

}  // namespace ntrace
