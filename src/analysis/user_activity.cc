#include "src/analysis/user_activity.h"

#include <algorithm>
#include <map>
#include <vector>

namespace ntrace {
namespace {

UserActivityRow AnalyzeInterval(const TraceSet& trace, double interval_seconds,
                                uint64_t threshold_bytes) {
  // bytes[(system, interval)] over data-transfer records.
  std::map<std::pair<uint32_t, int64_t>, uint64_t> bytes;
  int64_t last_interval = 0;
  for (const TraceRecord& r : trace.records) {
    if (!IsDataTransfer(r.Event()) || r.IsCacheInduced()) {
      continue;
    }
    const int64_t interval = static_cast<int64_t>(
        r.CompleteTime().ToSecondsF() / interval_seconds);
    bytes[{r.system_id, interval}] += r.returned;
    last_interval = std::max(last_interval, interval);
  }

  UserActivityRow row;
  row.interval_seconds = interval_seconds;
  if (bytes.empty()) {
    return row;
  }

  // Active-user counts per interval, and per-(user, interval) throughput.
  std::map<int64_t, int> active;
  StreamingStats user_throughput;
  double peak_user = 0;
  std::map<int64_t, double> system_wide;
  for (const auto& [key, b] : bytes) {
    if (b <= threshold_bytes) {
      continue;  // Background service noise, not user activity.
    }
    ++active[key.second];
    const double kbs = static_cast<double>(b) / 1024.0 / interval_seconds;
    user_throughput.Add(kbs);
    peak_user = std::max(peak_user, kbs);
    system_wide[key.second] += kbs;
  }

  StreamingStats active_stats;
  for (int64_t i = 0; i <= last_interval; ++i) {
    auto it = active.find(i);
    const int n = it == active.end() ? 0 : it->second;
    if (n > 0) {
      active_stats.Add(n);
      row.max_active_users = std::max(row.max_active_users, n);
    }
  }
  row.avg_active_users = active_stats.mean();
  row.avg_active_users_sd = active_stats.stddev();
  row.avg_user_throughput_kbs = user_throughput.mean();
  row.avg_user_throughput_sd = user_throughput.stddev();
  row.peak_user_throughput_kbs = peak_user;
  for (const auto& [_, total] : system_wide) {
    row.peak_system_wide_kbs = std::max(row.peak_system_wide_kbs, total);
  }
  return row;
}

}  // namespace

UserActivityResult UserActivityAnalyzer::Analyze(const TraceSet& trace,
                                                 uint64_t background_threshold_bytes) {
  UserActivityResult result;
  result.ten_minutes = AnalyzeInterval(trace, 600.0, background_threshold_bytes * 60);
  result.ten_seconds = AnalyzeInterval(trace, 10.0, background_threshold_bytes);
  return result;
}

}  // namespace ntrace
