#include "src/analysis/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/base/format.h"

namespace ntrace {

ComparisonReport::ComparisonReport(std::string title) : title_(std::move(title)) {}

void ComparisonReport::AddRow(const std::string& metric, const std::string& paper_value,
                              const std::string& measured_value, const std::string& note) {
  rows_.push_back({metric, paper_value, measured_value, note});
}

void ComparisonReport::AddPercent(const std::string& metric, double paper_pct,
                                  double measured_fraction, const std::string& note) {
  AddRow(metric, FormatF(paper_pct, 0) + "%", FormatPct(measured_fraction), note);
}

void ComparisonReport::AddValue(const std::string& metric, const std::string& paper_value,
                                double measured, const std::string& note) {
  AddRow(metric, paper_value, FormatF(measured), note);
}

void ComparisonReport::Print() const {
  std::printf("\n=== %s ===\n", title_.c_str());
  std::printf("%s", RenderTable({"metric", "paper", "measured", "note"}, rows_).c_str());
}

std::vector<double> LogProbePoints(double lo, double hi, int per_decade) {
  std::vector<double> points;
  const double step = 1.0 / per_decade;
  for (double lg = std::log10(lo); lg <= std::log10(hi) + 1e-9; lg += step) {
    points.push_back(std::pow(10.0, lg));
  }
  return points;
}

void PrintCdfSeries(const std::string& title, const WeightedCdf& cdf,
                    const std::vector<double>& probe_points, const std::string& unit) {
  std::printf("\n--- %s (n=%zu) ---\n", title.c_str(), cdf.size());
  if (cdf.empty()) {
    std::printf("  (no samples)\n");
    return;
  }
  for (double p : probe_points) {
    std::printf("  <= %12.4g %-8s : %6.2f%%\n", p, unit.c_str(), 100.0 * cdf.Fraction(p));
  }
}

void PrintLlcd(const std::string& title, const LlcdSeries& series, size_t max_rows) {
  std::printf("\n--- %s (LLCD, alpha_hat=%.2f, r2=%.3f) ---\n", title.c_str(),
              series.alpha_hat, series.fit_r2);
  if (series.log_x.empty()) {
    std::printf("  (no tail)\n");
    return;
  }
  const size_t stride = std::max<size_t>(1, series.log_x.size() / max_rows);
  std::printf("  %-14s %-14s\n", "log10(x)", "log10 P[X>x]");
  for (size_t i = 0; i < series.log_x.size(); i += stride) {
    std::printf("  %-14.3f %-14.3f\n", series.log_x[i], series.log_ccdf[i]);
  }
}

void PrintArrivalComparison(const std::string& title, const std::vector<double>& trace_counts,
                            const std::vector<double>& poisson_counts, size_t max_rows) {
  std::printf("\n--- %s ---\n", title.c_str());
  const size_t n = std::max(trace_counts.size(), poisson_counts.size());
  if (n == 0) {
    std::printf("  (no data)\n");
    return;
  }
  const size_t stride = std::max<size_t>(1, n / max_rows);
  std::printf("  %-10s %-12s %-12s\n", "interval", "trace", "poisson");
  for (size_t i = 0; i < n; i += stride) {
    const double t = i < trace_counts.size() ? trace_counts[i] : 0;
    const double p = i < poisson_counts.size() ? poisson_counts[i] : 0;
    std::printf("  %-10zu %-12.0f %-12.0f\n", i, t, p);
  }
}

void PrintIntegrityReport(const IntegrityReport& report) {
  std::printf("\n=== Collection pipeline integrity ===\n");
  if (report.systems.empty()) {
    std::printf("  (no streams)\n");
    return;
  }
  auto row_of = [](const std::string& label, const SystemIntegrity& s) {
    return std::vector<std::string>{
        label,
        std::to_string(s.records_emitted),
        std::to_string(s.records_collected),
        std::to_string(s.records_overflow_dropped),
        std::to_string(s.records_shed),
        std::to_string(s.records_lost),
        std::to_string(s.records_unresolved),
        std::to_string(s.duplicate_records_discarded),
        std::to_string(s.sequence_gaps),
        std::to_string(s.shipment_attempts),
        std::to_string(s.shipments_abandoned),
        std::to_string(s.records_salvaged),
        std::to_string(s.records_lost_to_corruption),
        FormatPct(s.CollectedFraction()),
        s.Accounted() ? "yes" : "NO",
    };
  };
  std::vector<std::vector<std::string>> rows;
  for (const SystemIntegrity& s : report.systems) {
    rows.push_back(row_of("sys " + std::to_string(s.system_id), s));
  }
  const SystemIntegrity totals = report.Totals();
  rows.push_back(row_of("total", totals));
  std::printf("%s", RenderTable({"system", "emitted", "collected", "dropped", "shed", "lost",
                                 "unresolved", "dup-discard", "gaps", "attempts", "abandoned",
                                 "salvaged", "corrupt-lost", "coll%", "accounted"},
                                rows)
                        .c_str());
}

}  // namespace ntrace
