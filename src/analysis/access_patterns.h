// Table 3 and figures 1-4: access-pattern mix, sequential run lengths, and
// file-size distributions weighted by opens and by bytes.

#ifndef SRC_ANALYSIS_ACCESS_PATTERNS_H_
#define SRC_ANALYSIS_ACCESS_PATTERNS_H_

#include <array>
#include <cstdint>

#include "src/analysis/patterns.h"
#include "src/stats/descriptive.h"
#include "src/tracedb/instance_table.h"

namespace ntrace {

// One cell of table 3: percentage of accesses and of bytes, with the
// min/max range observed when each system's trace is analyzed separately
// (the -/+ columns the paper stresses in section 7).
struct PatternCell {
  double accesses_pct = 0.0;
  double accesses_min = 0.0;
  double accesses_max = 0.0;
  double bytes_pct = 0.0;
  double bytes_min = 0.0;
  double bytes_max = 0.0;
};

struct AccessPatternTable {
  // [UsageMode][TransferPattern].
  std::array<std::array<PatternCell, 3>, 3> cells{};
  // Per usage mode: share of sessions and of bytes.
  std::array<PatternCell, 3> usage_totals{};
  uint64_t data_sessions = 0;
};

struct RunLengthResult {
  WeightedCdf read_runs_by_count;   // Figure 1.
  WeightedCdf write_runs_by_count;
  WeightedCdf read_runs_by_bytes;   // Figure 2.
  WeightedCdf write_runs_by_bytes;
  double read_p80_bytes = 0.0;  // The paper's 80% mark (11 KB).
};

struct FileSizeResult {
  // Figure 3: file size weighted by opens; figure 4: weighted by bytes.
  std::array<WeightedCdf, 3> size_by_opens;  // Per UsageMode.
  std::array<WeightedCdf, 3> size_by_bytes;
  WeightedCdf all_by_opens;
  WeightedCdf all_by_bytes;
  double p80_size_by_opens = 0.0;   // Paper: ~26 KB ("80% smaller than 26K").
  double top20_size = 0.0;          // Paper: top 20% of files are > 4 MB.
};

class AccessPatternAnalyzer {
 public:
  // Builds table 3. When the table spans several systems, ranges come from
  // per-system analyses.
  static AccessPatternTable BuildTable(const InstanceTable& instances);

  static RunLengthResult AnalyzeRuns(const InstanceTable& instances);

  static FileSizeResult AnalyzeFileSizes(const InstanceTable& instances);
};

}  // namespace ntrace

#endif  // SRC_ANALYSIS_ACCESS_PATTERNS_H_
