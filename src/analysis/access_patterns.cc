#include "src/analysis/access_patterns.h"

#include <algorithm>
#include <map>

namespace ntrace {
namespace {

struct Tally {
  // [usage][pattern] session and byte counts.
  double sessions[3][3] = {};
  double bytes[3][3] = {};
  double total_sessions = 0;
  double total_bytes = 0;
};

Tally TallyInstances(const std::vector<const Instance*>& sessions) {
  Tally t;
  for (const Instance* s : sessions) {
    const size_t u = static_cast<size_t>(ClassifyUsage(*s));
    const size_t p = static_cast<size_t>(ClassifyPattern(*s));
    const double b = static_cast<double>(s->bytes_read + s->bytes_written);
    t.sessions[u][p] += 1;
    t.bytes[u][p] += b;
    t.total_sessions += 1;
    t.total_bytes += b;
  }
  return t;
}

}  // namespace

AccessPatternTable AccessPatternAnalyzer::BuildTable(const InstanceTable& instances) {
  AccessPatternTable table;
  const std::vector<const Instance*> sessions = instances.DataSessions();
  table.data_sessions = sessions.size();
  const Tally overall = TallyInstances(sessions);

  // Per-system tallies for the -/+ range columns.
  std::map<uint32_t, std::vector<const Instance*>> by_system;
  for (const Instance* s : sessions) {
    by_system[s->system_id].push_back(s);
  }
  std::vector<Tally> per_system;
  per_system.reserve(by_system.size());
  for (const auto& [_, group] : by_system) {
    per_system.push_back(TallyInstances(group));
  }

  for (size_t u = 0; u < 3; ++u) {
    // Denominators per usage mode (the paper's percentages are within mode).
    double mode_sessions = 0;
    double mode_bytes = 0;
    for (size_t p = 0; p < 3; ++p) {
      mode_sessions += overall.sessions[u][p];
      mode_bytes += overall.bytes[u][p];
    }
    table.usage_totals[u].accesses_pct =
        overall.total_sessions > 0 ? 100.0 * mode_sessions / overall.total_sessions : 0;
    table.usage_totals[u].bytes_pct =
        overall.total_bytes > 0 ? 100.0 * mode_bytes / overall.total_bytes : 0;

    for (size_t p = 0; p < 3; ++p) {
      PatternCell& cell = table.cells[u][p];
      cell.accesses_pct =
          mode_sessions > 0 ? 100.0 * overall.sessions[u][p] / mode_sessions : 0;
      cell.bytes_pct = mode_bytes > 0 ? 100.0 * overall.bytes[u][p] / mode_bytes : 0;
      cell.accesses_min = 100.0;
      cell.bytes_min = 100.0;
      for (const Tally& t : per_system) {
        double sys_mode_sessions = 0;
        double sys_mode_bytes = 0;
        for (size_t q = 0; q < 3; ++q) {
          sys_mode_sessions += t.sessions[u][q];
          sys_mode_bytes += t.bytes[u][q];
        }
        const double a =
            sys_mode_sessions > 0 ? 100.0 * t.sessions[u][p] / sys_mode_sessions : 0;
        const double b = sys_mode_bytes > 0 ? 100.0 * t.bytes[u][p] / sys_mode_bytes : 0;
        cell.accesses_min = std::min(cell.accesses_min, a);
        cell.accesses_max = std::max(cell.accesses_max, a);
        cell.bytes_min = std::min(cell.bytes_min, b);
        cell.bytes_max = std::max(cell.bytes_max, b);
      }
      if (per_system.empty()) {
        cell.accesses_min = cell.accesses_max = cell.accesses_pct;
        cell.bytes_min = cell.bytes_max = cell.bytes_pct;
      }
    }
  }
  return table;
}

RunLengthResult AccessPatternAnalyzer::AnalyzeRuns(const InstanceTable& instances) {
  RunLengthResult result;
  for (const Instance* s : instances.DataSessions()) {
    for (const SequentialRun& run : ExtractRuns(*s)) {
      const double bytes = static_cast<double>(run.bytes);
      if (run.write) {
        result.write_runs_by_count.Add(bytes, 1.0);
        result.write_runs_by_bytes.Add(bytes, bytes);
      } else {
        result.read_runs_by_count.Add(bytes, 1.0);
        result.read_runs_by_bytes.Add(bytes, bytes);
      }
    }
  }
  result.read_runs_by_count.Finalize();
  result.write_runs_by_count.Finalize();
  result.read_runs_by_bytes.Finalize();
  result.write_runs_by_bytes.Finalize();
  if (!result.read_runs_by_count.empty()) {
    result.read_p80_bytes = result.read_runs_by_count.Percentile(0.80);
  }
  return result;
}

FileSizeResult AccessPatternAnalyzer::AnalyzeFileSizes(const InstanceTable& instances) {
  FileSizeResult result;
  for (const Instance* s : instances.DataSessions()) {
    const size_t u = static_cast<size_t>(ClassifyUsage(*s));
    const double size = static_cast<double>(s->max_file_size);
    const double bytes = static_cast<double>(s->bytes_read + s->bytes_written);
    result.size_by_opens[u].Add(size, 1.0);
    result.size_by_bytes[u].Add(size, bytes);
    result.all_by_opens.Add(size, 1.0);
    result.all_by_bytes.Add(size, bytes);
  }
  for (size_t u = 0; u < 3; ++u) {
    result.size_by_opens[u].Finalize();
    result.size_by_bytes[u].Finalize();
  }
  result.all_by_opens.Finalize();
  result.all_by_bytes.Finalize();
  if (!result.all_by_opens.empty()) {
    result.p80_size_by_opens = result.all_by_opens.Percentile(0.80);
  }
  if (!result.all_by_bytes.empty()) {
    // "The top 20% of files are larger than 4 Mbytes, and access to these
    // files accounts for the majority of the transferred bytes": the large
    // end of the byte-weighted size distribution.
    result.top20_size = result.all_by_bytes.Percentile(0.80);
  }
  return result;
}

}  // namespace ntrace
