// Access-pattern classification shared by the table-3 and figure-1/2
// analyses.
//
// The BSD/Sprite taxonomy the paper reuses (section 6.2): an open-close
// session is *whole-file sequential* when its transfers start at offset 0,
// each transfer begins where the previous ended, and the session moves at
// least the file's size; *other sequential* when transfers are sequential
// but partial; *random* otherwise. A *sequential run* is a maximal chain of
// same-direction transfers each starting where the previous one ended.

#ifndef SRC_ANALYSIS_PATTERNS_H_
#define SRC_ANALYSIS_PATTERNS_H_

#include <cstdint>
#include <vector>

#include "src/tracedb/instance_table.h"

namespace ntrace {

enum class TransferPattern : uint8_t {
  kWholeFile,
  kOtherSequential,
  kRandom,
};

enum class UsageMode : uint8_t {
  kReadOnly,
  kWriteOnly,
  kReadWrite,
};

// Classifies the session's transfer pattern. `fuzz_mask` optionally ignores
// low offset bits when matching (the cache manager's 7-bit fuzzy notion of
// sequentiality, section 9.1); 0 = exact matching as the older studies did.
TransferPattern ClassifyPattern(const Instance& session, uint32_t fuzz_mask = 0);

// Usage mode of a data session (requires session.HasData()).
UsageMode ClassifyUsage(const Instance& session);

// One maximal sequential run.
struct SequentialRun {
  uint64_t bytes = 0;
  uint32_t ops = 0;
  bool write = false;
};

// Extracts the sequential runs of a session, reads and writes separately.
std::vector<SequentialRun> ExtractRuns(const Instance& session);

}  // namespace ntrace

#endif  // SRC_ANALYSIS_PATTERNS_H_
