// IRP lookaside pool.
//
// NT keeps IRPs on per-processor lookaside lists so the I/O manager never
// touches the general allocator on the request path. This pool is the
// simulator's equivalent: IRPs are recycled LIFO (the hottest packet stays
// cache-warm), and -- the part that actually kills allocations here -- the
// std::string members (path, rename target, search pattern) keep their
// capacity across reuse, so assigning the next request's path lands in an
// already-sized buffer. Nested acquisition (an app IRP outstanding while the
// cache manager issues a paging IRP) just pops a second packet.

#ifndef SRC_NTIO_IRP_POOL_H_
#define SRC_NTIO_IRP_POOL_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/ntio/irp.h"

namespace ntrace {

class IrpPool {
 public:
  IrpPool() = default;
  IrpPool(const IrpPool&) = delete;
  IrpPool& operator=(const IrpPool&) = delete;

  Irp* Acquire() {
    if (free_.empty()) {
      owned_.push_back(std::make_unique<Irp>());
      return owned_.back().get();
    }
    Irp* irp = free_.back();
    free_.pop_back();
    return irp;
  }

  // Scrubs the packet and returns it to the free list. Strings are
  // clear()ed, not reassigned, so their buffers survive for the next user.
  void Release(Irp* irp) {
    irp->major = IrpMajor::kCreate;
    irp->flags = 0;
    irp->file_object = nullptr;
    irp->process_id = 0;
    irp->result = IrpResult{};
    irp->issued = SimTime();
    irp->completed = SimTime();
    irp->path.clear();
    IrpParameters& p = irp->params;
    std::string rename_target = std::move(p.rename_target);
    std::string search_pattern = std::move(p.search_pattern);
    rename_target.clear();
    search_pattern.clear();
    p = IrpParameters{};
    p.rename_target = std::move(rename_target);
    p.search_pattern = std::move(search_pattern);
    free_.push_back(irp);
  }

  // Packets ever created; steady state means this stops growing.
  size_t created() const { return owned_.size(); }
  size_t available() const { return free_.size(); }

 private:
  std::vector<std::unique_ptr<Irp>> owned_;  // Stable addresses.
  std::vector<Irp*> free_;                   // LIFO.
};

// RAII guard: acquire on construction, release on scope exit.
class PooledIrp {
 public:
  explicit PooledIrp(IrpPool& pool) : pool_(&pool), irp_(pool.Acquire()) {}
  ~PooledIrp() {
    if (irp_ != nullptr) {
      pool_->Release(irp_);
    }
  }
  PooledIrp(const PooledIrp&) = delete;
  PooledIrp& operator=(const PooledIrp&) = delete;

  Irp* operator->() const { return irp_; }
  Irp& operator*() const { return *irp_; }

 private:
  IrpPool* pool_;
  Irp* irp_;
};

}  // namespace ntrace

#endif  // SRC_NTIO_IRP_POOL_H_
