#include "src/ntio/irp.h"

namespace ntrace {

std::string_view IrpMajorName(IrpMajor m) {
  switch (m) {
    case IrpMajor::kCreate:
      return "CREATE";
    case IrpMajor::kRead:
      return "READ";
    case IrpMajor::kWrite:
      return "WRITE";
    case IrpMajor::kQueryInformation:
      return "QUERY_INFORMATION";
    case IrpMajor::kSetInformation:
      return "SET_INFORMATION";
    case IrpMajor::kQueryVolumeInformation:
      return "QUERY_VOLUME_INFORMATION";
    case IrpMajor::kDirectoryControl:
      return "DIRECTORY_CONTROL";
    case IrpMajor::kFileSystemControl:
      return "FILE_SYSTEM_CONTROL";
    case IrpMajor::kDeviceControl:
      return "DEVICE_CONTROL";
    case IrpMajor::kFlushBuffers:
      return "FLUSH_BUFFERS";
    case IrpMajor::kLockControl:
      return "LOCK_CONTROL";
    case IrpMajor::kCleanup:
      return "CLEANUP";
    case IrpMajor::kClose:
      return "CLOSE";
    case IrpMajor::kQueryEa:
      return "QUERY_EA";
    case IrpMajor::kSetEa:
      return "SET_EA";
    case IrpMajor::kQuerySecurity:
      return "QUERY_SECURITY";
    case IrpMajor::kSetSecurity:
      return "SET_SECURITY";
    case IrpMajor::kShutdown:
      return "SHUTDOWN";
  }
  return "UNKNOWN";
}

std::string_view CreateDispositionName(CreateDisposition d) {
  switch (d) {
    case CreateDisposition::kSupersede:
      return "SUPERSEDE";
    case CreateDisposition::kOpen:
      return "OPEN";
    case CreateDisposition::kCreate:
      return "CREATE";
    case CreateDisposition::kOpenIf:
      return "OPEN_IF";
    case CreateDisposition::kOverwrite:
      return "OVERWRITE";
    case CreateDisposition::kOverwriteIf:
      return "OVERWRITE_IF";
  }
  return "UNKNOWN";
}

std::string_view FileInfoClassName(FileInfoClass c) {
  switch (c) {
    case FileInfoClass::kBasic:
      return "BASIC";
    case FileInfoClass::kStandard:
      return "STANDARD";
    case FileInfoClass::kDisposition:
      return "DISPOSITION";
    case FileInfoClass::kEndOfFile:
      return "END_OF_FILE";
    case FileInfoClass::kAllocation:
      return "ALLOCATION";
    case FileInfoClass::kRename:
      return "RENAME";
    case FileInfoClass::kPosition:
      return "POSITION";
    case FileInfoClass::kName:
      return "NAME";
  }
  return "UNKNOWN";
}

std::string_view FsctlCodeName(FsctlCode c) {
  switch (c) {
    case FsctlCode::kIsVolumeMounted:
      return "IS_VOLUME_MOUNTED";
    case FsctlCode::kIsPathnameValid:
      return "IS_PATHNAME_VALID";
    case FsctlCode::kGetVolumeBitmap:
      return "GET_VOLUME_BITMAP";
    case FsctlCode::kGetRetrievalPointers:
      return "GET_RETRIEVAL_POINTERS";
    case FsctlCode::kFilesystemGetStatistics:
      return "FILESYSTEM_GET_STATISTICS";
    case FsctlCode::kSetCompression:
      return "SET_COMPRESSION";
    case FsctlCode::kLockVolume:
      return "LOCK_VOLUME";
    case FsctlCode::kUnlockVolume:
      return "UNLOCK_VOLUME";
    case FsctlCode::kDismountVolume:
      return "DISMOUNT_VOLUME";
    case FsctlCode::kMarkVolumeDirty:
      return "MARK_VOLUME_DIRTY";
  }
  return "UNKNOWN";
}

}  // namespace ntrace
