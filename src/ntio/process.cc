#include "src/ntio/process.h"

namespace ntrace {

ProcessTable::ProcessTable() {
  ProcessInfo system;
  system.pid = kSystemProcessId;
  system.image_name = "system";
  system.running = true;
  table_.emplace(system.pid, std::move(system));
}

uint32_t ProcessTable::Spawn(std::string image_name, SimTime now, bool takes_user_input) {
  ProcessInfo info;
  info.pid = next_pid_;
  next_pid_ += 4;  // NT pids are multiples of 4.
  info.image_name = std::move(image_name);
  info.takes_user_input = takes_user_input;
  info.started_at = now;
  info.running = true;
  const uint32_t pid = info.pid;
  table_.emplace(pid, std::move(info));
  return pid;
}

void ProcessTable::Exit(uint32_t pid, SimTime now) {
  auto it = table_.find(pid);
  if (it != table_.end()) {
    it->second.exited_at = now;
    it->second.running = false;
  }
}

const ProcessInfo* ProcessTable::Find(uint32_t pid) const {
  auto it = table_.find(pid);
  return it == table_.end() ? nullptr : &it->second;
}

const std::string& ProcessTable::NameOf(uint32_t pid) const {
  const ProcessInfo* info = Find(pid);
  return info == nullptr ? unknown_name_ : info->image_name;
}

}  // namespace ntrace
