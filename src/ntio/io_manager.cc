#include "src/ntio/io_manager.h"

#include <algorithm>
#include <cassert>

#include "src/base/format.h"
#include "src/metrics/metrics.h"

namespace ntrace {

namespace {

// Process-wide dispatch counters (DESIGN.md §8). Registered once; the
// bundle caches references so the hot path never takes the registry lock.
// Attempts are derivable (accepted + rejected), so no attempts counter is
// maintained on the hot path.
struct IoMetrics {
  Counter& irp_dispatch;
  Counter& fastio_read_accepted;
  Counter& fastio_read_rejected;
  Counter& fastio_write_accepted;
  Counter& fastio_write_rejected;
  Counter& app_read_irp;
  Counter& app_write_irp;
  Histogram& app_read_size;
  Histogram& app_write_size;

  static IoMetrics& Get() {
    static IoMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return IoMetrics{
          r.GetCounter("ntrace_ntio_irp_dispatch_total",
                       "IRPs dispatched into a device stack (all majors, paging included)"),
          r.GetCounter("ntrace_ntio_fastio_read_accepted_total",
                       "FastIO reads the file system accepted (figure 13 numerator)"),
          r.GetCounter("ntrace_ntio_fastio_read_rejected_total",
                       "FastIO reads that fell back to the IRP path"),
          r.GetCounter("ntrace_ntio_fastio_write_accepted_total",
                       "FastIO writes the file system accepted"),
          r.GetCounter("ntrace_ntio_fastio_write_rejected_total",
                       "FastIO writes that fell back to the IRP path"),
          r.GetCounter("ntrace_ntio_app_read_irp_total",
                       "App-level reads that travelled the IRP path"),
          r.GetCounter("ntrace_ntio_app_write_irp_total",
                       "App-level writes that travelled the IRP path"),
          r.GetHistogram("ntrace_ntio_app_read_size_bytes",
                         "Requested size of app-level reads (figure 14)"),
          r.GetHistogram("ntrace_ntio_app_write_size_bytes",
                         "Requested size of app-level writes (figure 14)"),
      };
    }();
    return m;
  }
};

}  // namespace

IoManager::IoManager(Engine& engine, ProcessTable& processes, IoDispatchCosts costs)
    : engine_(engine), processes_(processes), costs_(costs) {}

void IoManager::RegisterVolume(const std::string& prefix, DeviceObject* top) {
  auto vol = std::make_unique<Volume>();
  vol->prefix = prefix;
  vol->top = top;
  vol->volume_file =
      std::make_unique<FileObject>(next_file_id_++, prefix + "\\", top, kSystemProcessId);
  vol->volume_file->is_directory = true;
  volumes_.push_back(std::move(vol));
  // Longest-prefix-first so "\\\\server\\share" wins over "\\\\server".
  std::sort(volumes_.begin(), volumes_.end(),
            [](const auto& a, const auto& b) { return a->prefix.size() > b->prefix.size(); });
}

DeviceObject* IoManager::AttachFilter(const std::string& prefix,
                                      std::unique_ptr<DeviceObject> filter) {
  Volume* vol = FindVolume(prefix + "\\");
  assert(vol != nullptr && "AttachFilter: unknown volume");
  filter->set_lower(vol->top);
  vol->top = filter.get();
  vol->volume_file = std::make_unique<FileObject>(next_file_id_++, vol->prefix + "\\", vol->top,
                                                  kSystemProcessId);
  vol->volume_file->is_directory = true;
  owned_devices_.push_back(std::move(filter));
  return vol->top;
}

IoManager::Volume* IoManager::FindVolume(std::string_view path) {
  for (const auto& vol : volumes_) {
    if (path.size() >= vol->prefix.size() &&
        EqualsIgnoreCase(path.substr(0, vol->prefix.size()), vol->prefix)) {
      return vol.get();
    }
  }
  return nullptr;
}

const IoManager::Volume* IoManager::FindVolume(std::string_view path) const {
  return const_cast<IoManager*>(this)->FindVolume(path);
}

DeviceObject* IoManager::ResolveVolume(std::string_view path) const {
  const Volume* vol = FindVolume(path);
  return vol == nullptr ? nullptr : vol->top;
}

std::vector<std::string> IoManager::VolumePrefixes() const {
  std::vector<std::string> out;
  out.reserve(volumes_.size());
  for (const auto& vol : volumes_) {
    out.push_back(vol->prefix);
  }
  return out;
}

FileObject* IoManager::NewFileObject(std::string path, DeviceObject* device,
                                     uint32_t process_id) {
  const uint64_t id = next_file_id_++;
  auto fo = std::make_unique<FileObject>(id, std::move(path), device, process_id);
  FileObject* raw = fo.get();
  files_.emplace(id, std::move(fo));
  return raw;
}

void IoManager::DestroyFileObject(FileObject& file) { files_.erase(file.id()); }

NtStatus IoManager::CallDriver(DeviceObject* device, Irp& irp) {
  ++irp_count_;
  IoMetrics::Get().irp_dispatch.Inc();
  irp.issued = engine_.Now();
  const NtStatus status = device->driver()->DispatchIrp(device, irp);
  irp.completed = engine_.Now();
  return status;
}

CreateResult IoManager::Create(const CreateRequest& request) {
  DeviceObject* top = ResolveVolume(request.path);
  if (top == nullptr) {
    return {NtStatus::kObjectPathNotFound, nullptr, CreateAction::kOpened};
  }
  FileObject* fo = NewFileObject(request.path, top, request.process_id);
  // Per-open options are parsed into the file object before dispatch, as the
  // NT I/O manager does.
  fo->desired_access = request.desired_access;
  fo->create_options = request.create_options;
  fo->share_access = request.share_access;
  fo->delete_on_close = (request.create_options & kOptDeleteOnClose) != 0;
  fo->sequential_only = (request.create_options & kOptSequentialOnly) != 0;
  fo->write_through = (request.create_options & kOptWriteThrough) != 0;
  fo->no_intermediate_buffering = (request.create_options & kOptNoIntermediateBuffering) != 0;
  fo->temporary = (request.file_attributes & kAttrTemporary) != 0;
  fo->opened_at = engine_.Now();

  PooledIrp irp(irp_pool_);
  irp->major = IrpMajor::kCreate;
  irp->flags = kIrpSynchronousApi;
  irp->file_object = fo;
  irp->process_id = request.process_id;
  irp->path = request.path;
  irp->params.disposition = request.disposition;
  irp->params.desired_access = request.desired_access;
  irp->params.create_options = request.create_options;
  irp->params.file_attributes = request.file_attributes;
  irp->params.share_access = request.share_access;

  engine_.AdvanceBy(costs_.irp_overhead);
  const NtStatus status = CallDriver(top, *irp);
  if (NtError(status)) {
    DestroyFileObject(*fo);
    return {status, nullptr, irp->result.create_action};
  }
  return {status, fo, irp->result.create_action};
}

IoResult IoManager::Read(FileObject& file, uint64_t offset, uint32_t length) {
  DeviceObject* top = file.device();
  IoMetrics& metrics = IoMetrics::Get();
  metrics.app_read_size.Observe(length);
  // FastIO is attempted only once the file system has initialized caching
  // for this file object and the open does not bypass the cache.
  if (file.caching_initialized && !file.no_intermediate_buffering) {
    ++fastio_read_attempts_;
    engine_.AdvanceBy(costs_.fastio_overhead);
    const FastIoResult r = top->driver()->FastIoRead(top, file, offset, length);
    if (r.possible) {
      ++fastio_read_hits_;
      metrics.fastio_read_accepted.Inc();
      if (NtSuccess(r.status)) {
        file.bytes_read += r.bytes;
        ++file.read_ops;
        file.current_byte_offset = offset + r.bytes;
      }
      return {r.status, r.bytes, /*used_fastio=*/true};
    }
    metrics.fastio_read_rejected.Inc();
  }
  metrics.app_read_irp.Inc();
  PooledIrp irp(irp_pool_);
  irp->major = IrpMajor::kRead;
  irp->flags = kIrpSynchronousApi;
  irp->file_object = &file;
  irp->process_id = file.process_id();
  irp->params.offset = offset;
  irp->params.length = length;
  engine_.AdvanceBy(costs_.irp_overhead);
  const NtStatus status = CallDriver(top, *irp);
  if (NtSuccess(status)) {
    file.bytes_read += irp->result.information;
    ++file.read_ops;
    file.current_byte_offset = offset + irp->result.information;
  }
  return {status, irp->result.information, /*used_fastio=*/false};
}

IoResult IoManager::Write(FileObject& file, uint64_t offset, uint32_t length) {
  DeviceObject* top = file.device();
  IoMetrics& metrics = IoMetrics::Get();
  metrics.app_write_size.Observe(length);
  if (file.caching_initialized && !file.no_intermediate_buffering && !file.write_through) {
    ++fastio_write_attempts_;
    engine_.AdvanceBy(costs_.fastio_overhead);
    const FastIoResult r = top->driver()->FastIoWrite(top, file, offset, length);
    if (r.possible) {
      ++fastio_write_hits_;
      metrics.fastio_write_accepted.Inc();
      if (NtSuccess(r.status)) {
        file.bytes_written += r.bytes;
        ++file.write_ops;
        file.current_byte_offset = offset + r.bytes;
      }
      return {r.status, r.bytes, /*used_fastio=*/true};
    }
    metrics.fastio_write_rejected.Inc();
  }
  metrics.app_write_irp.Inc();
  PooledIrp irp(irp_pool_);
  irp->major = IrpMajor::kWrite;
  irp->flags = kIrpSynchronousApi;
  if (file.write_through) {
    irp->flags |= kIrpWriteThrough;
  }
  irp->file_object = &file;
  irp->process_id = file.process_id();
  irp->params.offset = offset;
  irp->params.length = length;
  engine_.AdvanceBy(costs_.irp_overhead);
  const NtStatus status = CallDriver(top, *irp);
  if (NtSuccess(status)) {
    file.bytes_written += irp->result.information;
    ++file.write_ops;
    file.current_byte_offset = offset + irp->result.information;
  }
  return {status, irp->result.information, /*used_fastio=*/false};
}

IoResult IoManager::ReadNext(FileObject& file, uint32_t length) {
  return Read(file, file.current_byte_offset, length);
}

IoResult IoManager::WriteNext(FileObject& file, uint32_t length) {
  return Write(file, file.current_byte_offset, length);
}

NtStatus IoManager::SendIrp(FileObject& file, IrpMajor major, Irp& irp) {
  irp.major = major;
  irp.flags = kIrpSynchronousApi;
  irp.file_object = &file;
  irp.process_id = file.process_id();
  engine_.AdvanceBy(costs_.irp_overhead);
  return CallDriver(file.device(), irp);
}

NtStatus IoManager::QueryBasicInfo(FileObject& file, FileBasicInfo* out) {
  // The I/O manager first offers the query to the FastIO path.
  DeviceObject* top = file.device();
  engine_.AdvanceBy(costs_.fastio_overhead);
  if (top->driver()->FastIoQueryBasicInfo(top, file, out)) {
    return NtStatus::kSuccess;
  }
  PooledIrp irp(irp_pool_);
  irp->params.info_class = FileInfoClass::kBasic;
  irp->params.basic_out = out;
  return SendIrp(file, IrpMajor::kQueryInformation, *irp);
}

NtStatus IoManager::QueryStandardInfo(FileObject& file, FileStandardInfo* out) {
  DeviceObject* top = file.device();
  engine_.AdvanceBy(costs_.fastio_overhead);
  if (top->driver()->FastIoQueryStandardInfo(top, file, out)) {
    return NtStatus::kSuccess;
  }
  PooledIrp irp(irp_pool_);
  irp->params.info_class = FileInfoClass::kStandard;
  irp->params.standard_out = out;
  return SendIrp(file, IrpMajor::kQueryInformation, *irp);
}

NtStatus IoManager::SetBasicInfo(FileObject& file, const FileBasicInfo& info) {
  PooledIrp irp(irp_pool_);
  irp->params.info_class = FileInfoClass::kBasic;
  irp->params.basic_in = info;
  return SendIrp(file, IrpMajor::kSetInformation, *irp);
}

NtStatus IoManager::SetEndOfFile(FileObject& file, uint64_t size) {
  PooledIrp irp(irp_pool_);
  irp->params.info_class = FileInfoClass::kEndOfFile;
  irp->params.new_size = size;
  return SendIrp(file, IrpMajor::kSetInformation, *irp);
}

NtStatus IoManager::SetDispositionDelete(FileObject& file, bool delete_file) {
  PooledIrp irp(irp_pool_);
  irp->params.info_class = FileInfoClass::kDisposition;
  irp->params.delete_disposition = delete_file;
  return SendIrp(file, IrpMajor::kSetInformation, *irp);
}

NtStatus IoManager::Rename(FileObject& file, const std::string& new_path) {
  PooledIrp irp(irp_pool_);
  irp->params.info_class = FileInfoClass::kRename;
  irp->params.rename_target = new_path;
  return SendIrp(file, IrpMajor::kSetInformation, *irp);
}

NtStatus IoManager::Flush(FileObject& file) {
  PooledIrp irp(irp_pool_);
  return SendIrp(file, IrpMajor::kFlushBuffers, *irp);
}

NtStatus IoManager::Lock(FileObject& file, uint64_t offset, uint64_t length) {
  PooledIrp irp(irp_pool_);
  irp->params.offset = offset;
  irp->params.length = static_cast<uint32_t>(length);
  return SendIrp(file, IrpMajor::kLockControl, *irp);
}

NtStatus IoManager::Unlock(FileObject& file, uint64_t offset, uint64_t length) {
  PooledIrp irp(irp_pool_);
  irp->params.offset = offset;
  irp->params.length = static_cast<uint32_t>(length);
  irp->params.lock_release = true;
  return SendIrp(file, IrpMajor::kLockControl, *irp);
}

NtStatus IoManager::QueryDirectory(FileObject& file, bool restart_scan,
                                   const std::string& pattern, std::vector<DirEntry>* out) {
  PooledIrp irp(irp_pool_);
  irp->params.restart_scan = restart_scan;
  irp->params.search_pattern = pattern;
  irp->params.dir_out = out;
  return SendIrp(file, IrpMajor::kDirectoryControl, *irp);
}

NtStatus IoManager::Fsctl(FileObject& file, FsctlCode code) {
  PooledIrp irp(irp_pool_);
  irp->params.fsctl = code;
  return SendIrp(file, IrpMajor::kFileSystemControl, *irp);
}

NtStatus IoManager::FsctlVolume(const std::string& prefix, FsctlCode code, uint32_t process_id) {
  Volume* vol = FindVolume(prefix + "\\");
  if (vol == nullptr) {
    return NtStatus::kObjectPathNotFound;
  }
  PooledIrp irp(irp_pool_);
  irp->major = IrpMajor::kFileSystemControl;
  irp->flags = kIrpSynchronousApi;
  irp->file_object = vol->volume_file.get();
  irp->process_id = process_id;
  irp->params.fsctl = code;
  engine_.AdvanceBy(costs_.irp_overhead);
  return CallDriver(vol->top, *irp);
}

NtStatus IoManager::QueryVolumeInformation(FileObject& file, uint64_t* free_bytes) {
  PooledIrp irp(irp_pool_);
  const NtStatus status = SendIrp(file, IrpMajor::kQueryVolumeInformation, *irp);
  if (free_bytes != nullptr) {
    *free_bytes = irp->result.information;
  }
  return status;
}

void IoManager::CloseHandle(FileObject& file) {
  assert(!file.cleanup_done && "double CloseHandle");
  PooledIrp irp(irp_pool_);
  irp->major = IrpMajor::kCleanup;
  irp->flags = kIrpSynchronousApi;
  irp->file_object = &file;
  irp->process_id = file.process_id();
  engine_.AdvanceBy(costs_.irp_overhead);
  CallDriver(file.device(), *irp);
  file.cleanup_done = true;
  file.cleanup_at = engine_.Now();
  DereferenceFileObject(file);
}

void IoManager::ReferenceFileObject(FileObject& file) { ++file.ref_count; }

void IoManager::DereferenceFileObject(FileObject& file) {
  assert(file.ref_count > 0);
  if (--file.ref_count > 0) {
    return;
  }
  PooledIrp irp(irp_pool_);
  irp->major = IrpMajor::kClose;
  irp->file_object = &file;
  irp->process_id = file.process_id();
  CallDriver(file.device(), *irp);
  DestroyFileObject(file);
}

}  // namespace ntrace
