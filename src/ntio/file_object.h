// File objects: the kernel representation of one open of a file.
//
// Every open-close sequence in the paper corresponds to one FileObject
// instance (its analysis "instance" fact table is keyed by file-object id,
// section 4). The object carries the per-open state the I/O manager and the
// cache manager need: access mode, caching hints, the current byte offset,
// and a reference count that drives the two-stage cleanup/close protocol of
// section 8.1.

#ifndef SRC_NTIO_FILE_OBJECT_H_
#define SRC_NTIO_FILE_OBJECT_H_

#include <cstdint>
#include <string>

#include "src/base/time.h"
#include "src/ntio/fcb.h"
#include "src/ntio/irp.h"

namespace ntrace {

class DeviceObject;
class SharedCacheMap;  // Defined in src/mm; ntio only carries the pointer.

class FileObject {
 public:
  FileObject(uint64_t id, std::string path, DeviceObject* device, uint32_t process_id)
      : id_(id), path_(std::move(path)), device_(device), process_id_(process_id) {}

  FileObject(const FileObject&) = delete;
  FileObject& operator=(const FileObject&) = delete;

  uint64_t id() const { return id_; }
  const std::string& path() const { return path_; }
  void set_path(std::string p) { path_ = std::move(p); }
  DeviceObject* device() const { return device_; }
  uint32_t process_id() const { return process_id_; }

  // --- Per-open access and option state (set at create) ---
  uint32_t desired_access = 0;
  uint32_t create_options = 0;
  uint32_t share_access = 0;
  bool delete_on_close = false;
  bool sequential_only = false;       // kOptSequentialOnly.
  bool write_through = false;         // kOptWriteThrough.
  bool no_intermediate_buffering = false;  // kOptNoIntermediateBuffering.
  bool temporary = false;             // Opened/created with kAttrTemporary.
  bool is_directory = false;

  // --- I/O state ---
  uint64_t current_byte_offset = 0;
  // Directory enumeration cursor (index of next entry to return).
  size_t directory_cursor = 0;

  // --- File system context (the FCB); owned by the file system driver ---
  void* fs_context = nullptr;
  // Common header within the FCB, readable by layered components (see
  // src/ntio/fcb.h). Set together with fs_context on successful create.
  FcbHeader* fcb = nullptr;

  // --- Cache state ---
  // Non-null once the file system initialized caching through this file
  // object (NT: FileObject->PrivateCacheMap). The I/O manager only attempts
  // the FastIO path when this is set (section 10).
  SharedCacheMap* shared_cache_map = nullptr;
  bool caching_initialized = false;

  // --- Lifecycle ---
  // One reference for the user handle, plus one per cache/VM section holder.
  int ref_count = 1;
  bool cleanup_done = false;  // Handle closed; cleanup IRP already sent.
  SimTime opened_at;
  SimTime cleanup_at;

  // Statistic hooks read by analyzers/tests.
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint32_t read_ops = 0;
  uint32_t write_ops = 0;

 private:
  uint64_t id_;
  std::string path_;
  DeviceObject* device_;
  uint32_t process_id_;
};

}  // namespace ntrace

#endif  // SRC_NTIO_FILE_OBJECT_H_
