// The I/O manager: entry point for all file system requests.
//
// All file-system requests in Windows NT -- whether they originate in a
// user-level process, the VM manager or the network server -- are sent to the
// I/O manager, which validates them and presents them to the topmost driver
// of the volume's device stack (paper, section 3.2). Two access mechanisms
// exist: the IRP packet path and the FastIO procedural path. The I/O manager
// attempts FastIO for data transfers once the file system has initialized
// caching for the file (it checks FileObject::caching_initialized, the
// equivalent of NT's PrivateCacheMap test); when a FastIO routine returns
// "not possible" the request is retried over the IRP path (section 10).
//
// The I/O manager also owns FileObject lifecycle: a create produces a
// file object holding one handle reference; CloseHandle sends the cleanup
// IRP and drops that reference; the close IRP is sent only when the
// reference count reaches zero -- the cache manager holds an extra reference
// for cached files, which is why the paper observes close arriving 4-50 us
// after cleanup for read-cached files and 1-4 s for write-cached ones
// (section 8.1).

#ifndef SRC_NTIO_IO_MANAGER_H_
#define SRC_NTIO_IO_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/flat_map.h"
#include "src/base/time.h"
#include "src/ntio/driver.h"
#include "src/ntio/file_object.h"
#include "src/ntio/irp.h"
#include "src/ntio/irp_pool.h"
#include "src/ntio/process.h"
#include "src/ntio/status.h"
#include "src/sim/engine.h"

namespace ntrace {

struct CreateRequest {
  std::string path;
  CreateDisposition disposition = CreateDisposition::kOpen;
  uint32_t desired_access = kAccessReadData;
  uint32_t create_options = 0;
  uint32_t file_attributes = kAttrNormal;
  uint32_t share_access = kShareRead | kShareWrite;
  uint32_t process_id = kSystemProcessId;
};

struct CreateResult {
  NtStatus status = NtStatus::kSuccess;
  FileObject* file = nullptr;  // Non-null iff NtSuccess(status).
  CreateAction action = CreateAction::kOpened;
};

struct IoResult {
  NtStatus status = NtStatus::kSuccess;
  uint64_t bytes = 0;
  bool used_fastio = false;
};

// Fixed per-request CPU costs of the two dispatch mechanisms. The FastIO
// path is a direct procedure call; the IRP path allocates and walks a packet
// through the stack (the latency split of figure 13 starts from this gap and
// is widened by cache misses on the IRP path).
struct IoDispatchCosts {
  SimDuration irp_overhead = SimDuration::Micros(12);
  SimDuration fastio_overhead = SimDuration::Micros(2);
};

class IoManager {
 public:
  IoManager(Engine& engine, ProcessTable& processes, IoDispatchCosts costs = {});

  IoManager(const IoManager&) = delete;
  IoManager& operator=(const IoManager&) = delete;

  Engine& engine() { return engine_; }
  ProcessTable& processes() { return processes_; }

  // --- Volume / device-stack management -------------------------------------

  // Registers a volume rooted at `prefix` (e.g. "C:" or "\\\\server\\share")
  // whose stack currently consists of the single device `top`. Also creates
  // the long-lived volume file object that volume FSCTLs target.
  void RegisterVolume(const std::string& prefix, DeviceObject* top);

  // Attaches a filter device on top of a volume's stack; subsequent requests
  // are dispatched to the filter first. Returns the new top device.
  DeviceObject* AttachFilter(const std::string& prefix, std::unique_ptr<DeviceObject> filter);

  // Top-of-stack device for a path, or nullptr when no volume matches.
  DeviceObject* ResolveVolume(std::string_view path) const;

  std::vector<std::string> VolumePrefixes() const;

  // --- The NT system-service layer ------------------------------------------

  CreateResult Create(const CreateRequest& request);

  // Explicit-offset read/write.
  IoResult Read(FileObject& file, uint64_t offset, uint32_t length);
  IoResult Write(FileObject& file, uint64_t offset, uint32_t length);
  // Current-byte-offset variants (advance the offset on success).
  IoResult ReadNext(FileObject& file, uint32_t length);
  IoResult WriteNext(FileObject& file, uint32_t length);

  NtStatus QueryBasicInfo(FileObject& file, FileBasicInfo* out);
  NtStatus QueryStandardInfo(FileObject& file, FileStandardInfo* out);
  NtStatus SetBasicInfo(FileObject& file, const FileBasicInfo& info);
  NtStatus SetEndOfFile(FileObject& file, uint64_t size);
  NtStatus SetDispositionDelete(FileObject& file, bool delete_file);
  NtStatus Rename(FileObject& file, const std::string& new_path);
  NtStatus Flush(FileObject& file);
  NtStatus Lock(FileObject& file, uint64_t offset, uint64_t length);
  NtStatus Unlock(FileObject& file, uint64_t offset, uint64_t length);

  // Directory enumeration; appends up to an FS-chosen chunk of entries.
  // Returns kNoMoreFiles when the cursor is exhausted.
  NtStatus QueryDirectory(FileObject& file, bool restart_scan, const std::string& pattern,
                          std::vector<DirEntry>* out);

  // File-system control against an open file.
  NtStatus Fsctl(FileObject& file, FsctlCode code);
  // File-system control against the volume itself (no app-visible open; NT
  // issues these against the volume file object during name validation --
  // the paper's "is volume mounted" traffic, section 8.3).
  NtStatus FsctlVolume(const std::string& prefix, FsctlCode code, uint32_t process_id);

  NtStatus QueryVolumeInformation(FileObject& file, uint64_t* free_bytes = nullptr);

  // Closes the user handle: sends cleanup, drops the handle reference. The
  // close IRP follows when all references are gone.
  void CloseHandle(FileObject& file);

  // Reference counting used by the cache/VM managers.
  void ReferenceFileObject(FileObject& file);
  void DereferenceFileObject(FileObject& file);

  // Low-level: send an already-built IRP to the top of `device`'s stack.
  // Used by the VM manager for paging I/O. Stamps issue/completion times.
  NtStatus CallDriver(DeviceObject* device, Irp& irp);

  // The IRP lookaside pool (DESIGN.md §9). The VM and cache managers draw
  // their paging IRPs from here so the whole I/O path recycles packets.
  IrpPool& irp_pool() { return irp_pool_; }

  // Makes file-object ids globally unique across a fleet of systems whose
  // traces merge into one collection (ids become base | counter). Call
  // before any file object is created.
  void SetFileIdBase(uint64_t base) { next_file_id_ = base + 1; }

  // --- Introspection ---------------------------------------------------------

  size_t open_file_count() const { return files_.size(); }
  uint64_t fastio_read_attempts() const { return fastio_read_attempts_; }
  uint64_t fastio_read_hits() const { return fastio_read_hits_; }
  uint64_t fastio_write_attempts() const { return fastio_write_attempts_; }
  uint64_t fastio_write_hits() const { return fastio_write_hits_; }
  uint64_t irp_count() const { return irp_count_; }

 private:
  struct Volume {
    std::string prefix;
    DeviceObject* top = nullptr;
    std::unique_ptr<FileObject> volume_file;
  };

  FileObject* NewFileObject(std::string path, DeviceObject* device, uint32_t process_id);
  void DestroyFileObject(FileObject& file);
  // Stamps the IRP header (major, synchronous flag, file object, process),
  // charges the dispatch overhead and sends it down `file`'s stack. The
  // caller reads any output from irp.result.
  NtStatus SendIrp(FileObject& file, IrpMajor major, Irp& irp);
  Volume* FindVolume(std::string_view path);
  const Volume* FindVolume(std::string_view path) const;

  Engine& engine_;
  ProcessTable& processes_;
  IoDispatchCosts costs_;
  std::vector<std::unique_ptr<Volume>> volumes_;
  std::vector<std::unique_ptr<DeviceObject>> owned_devices_;
  // Flat map: the open-file table is probed on every create/close.
  FlatMap<uint64_t, std::unique_ptr<FileObject>> files_;
  IrpPool irp_pool_;
  uint64_t next_file_id_ = 1;

  uint64_t fastio_read_attempts_ = 0;
  uint64_t fastio_read_hits_ = 0;
  uint64_t fastio_write_attempts_ = 0;
  uint64_t fastio_write_hits_ = 0;
  uint64_t irp_count_ = 0;
};

}  // namespace ntrace

#endif  // SRC_NTIO_IO_MANAGER_H_
