// Drivers and device stacks.
//
// NT file systems are implemented as layered device drivers: the I/O manager
// hands a request to the topmost device of a volume's stack and each driver
// either completes it or passes it to the device below. Filter drivers (like
// the paper's trace driver, section 3.2) attach on top of a file-system
// device and see every request.
//
// Two access mechanisms exist (section 3.2):
//   * the packet path: DispatchIrp(), walked down the chain, and
//   * the FastIO path: direct method invocation, where each layer calls the
//     same method on the device below. A driver that does not implement a
//     FastIO routine returns false ("not possible"), forcing the I/O manager
//     to fall back to an IRP -- which is exactly the handicap the paper
//     describes for filter drivers lacking passthrough FastIO tables.

#ifndef SRC_NTIO_DRIVER_H_
#define SRC_NTIO_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/ntio/file_object.h"
#include "src/ntio/irp.h"
#include "src/ntio/status.h"

namespace ntrace {

class DeviceObject;

// Result of a FastIO data transfer attempt.
struct FastIoResult {
  bool possible = false;  // False: caller must retry via the IRP path.
  NtStatus status = NtStatus::kSuccess;
  uint32_t bytes = 0;
};

class Driver {
 public:
  virtual ~Driver() = default;

  virtual std::string_view Name() const = 0;

  // The packet path. The driver must fill irp.result before returning. The
  // returned status duplicates irp.result.status for caller convenience.
  virtual NtStatus DispatchIrp(DeviceObject* device, Irp& irp) = 0;

  // The FastIO path. Defaults return not-possible, which models a driver
  // without a FastIO dispatch table.
  virtual FastIoResult FastIoRead(DeviceObject* device, FileObject& file, uint64_t offset,
                                  uint32_t length);
  virtual FastIoResult FastIoWrite(DeviceObject* device, FileObject& file, uint64_t offset,
                                   uint32_t length);
  virtual bool FastIoQueryBasicInfo(DeviceObject* device, FileObject& file, FileBasicInfo* out);
  virtual bool FastIoQueryStandardInfo(DeviceObject* device, FileObject& file,
                                       FileStandardInfo* out);
  // CheckIfPossible: may the I/O manager use FastIO for this transfer?
  virtual bool FastIoCheckIfPossible(DeviceObject* device, FileObject& file, uint64_t offset,
                                     uint32_t length, bool is_write);
};

// A device object: one layer in a volume's driver stack.
class DeviceObject {
 public:
  DeviceObject(std::string name, Driver* driver) : name_(std::move(name)), driver_(driver) {}

  const std::string& name() const { return name_; }
  Driver* driver() const { return driver_; }

  // The device below this one (nullptr for the bottom of the stack).
  DeviceObject* lower() const { return lower_; }
  void set_lower(DeviceObject* lower) { lower_ = lower; }

 private:
  std::string name_;
  Driver* driver_;
  DeviceObject* lower_ = nullptr;
};

// Convenience helpers to forward a request to the next-lower device. Used by
// filter drivers for passthrough.
NtStatus ForwardIrp(DeviceObject* device, Irp& irp);
FastIoResult ForwardFastIoRead(DeviceObject* device, FileObject& file, uint64_t offset,
                               uint32_t length);
FastIoResult ForwardFastIoWrite(DeviceObject* device, FileObject& file, uint64_t offset,
                                uint32_t length);
bool ForwardFastIoQueryBasicInfo(DeviceObject* device, FileObject& file, FileBasicInfo* out);
bool ForwardFastIoQueryStandardInfo(DeviceObject* device, FileObject& file,
                                    FileStandardInfo* out);
bool ForwardFastIoCheckIfPossible(DeviceObject* device, FileObject& file, uint64_t offset,
                                  uint32_t length, bool is_write);

}  // namespace ntrace

#endif  // SRC_NTIO_DRIVER_H_
