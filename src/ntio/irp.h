// I/O request packets.
//
// The Windows NT I/O manager presents requests to the topmost driver of a
// device stack either as an IRP (a packet walked down the driver chain) or
// via the FastIO procedural interface (section 10 of the paper). This header
// models the IRP: major/minor function codes, header flags (notably the
// PagingIo bit that marks VM-manager-originated requests, section 3.3),
// per-operation parameters, and the result written back by the file system.

#ifndef SRC_NTIO_IRP_H_
#define SRC_NTIO_IRP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/time.h"
#include "src/ntio/status.h"

namespace ntrace {

class FileObject;

// IRP major function codes (the subset of NT's IRP_MJ_* that carries the
// operations the paper's filter driver records).
enum class IrpMajor : uint8_t {
  kCreate,
  kRead,
  kWrite,
  kQueryInformation,
  kSetInformation,
  kQueryVolumeInformation,
  kDirectoryControl,
  kFileSystemControl,
  kDeviceControl,
  kFlushBuffers,
  kLockControl,
  kCleanup,
  kClose,
  kQueryEa,
  kSetEa,
  kQuerySecurity,
  kSetSecurity,
  kShutdown,
};
constexpr int kNumIrpMajor = 18;

std::string_view IrpMajorName(IrpMajor m);

// IRP header flags.
enum IrpFlags : uint32_t {
  kIrpPagingIo = 1u << 0,         // Issued by the VM manager (page fault / lazy write).
  kIrpSynchronousApi = 1u << 1,   // Caller blocks for completion.
  kIrpNoCache = 1u << 2,          // Bypass the cache manager.
  kIrpWriteThrough = 1u << 3,     // Do not delay the disk write.
  kIrpReadAhead = 1u << 4,        // Cache-manager speculative read (subset of paging I/O).
  kIrpLazyWrite = 1u << 5,        // Cache-manager write-behind (subset of paging I/O).
  // Paging I/O induced by the cache manager on behalf of a cached user
  // request (the "duplicate" class the paper filters in analysis, section
  // 3.3). Paging I/O without this bit is VM-originated: image loading and
  // mapped-file faults.
  kIrpCacheFault = 1u << 6,
};

// NT create dispositions (what to do if the file does or does not exist).
enum class CreateDisposition : uint8_t {
  kSupersede,    // Replace if exists, create otherwise.
  kOpen,         // Fail if missing.
  kCreate,       // Fail if exists.
  kOpenIf,       // Open, create if missing.
  kOverwrite,    // Truncate-open; fail if missing.
  kOverwriteIf,  // Truncate-open; create if missing.
};

std::string_view CreateDispositionName(CreateDisposition d);

// What the file system actually did for a successful create.
enum class CreateAction : uint8_t {
  kOpened,
  kCreated,
  kOverwritten,
  kSuperseded,
};

// Desired-access bits for create.
enum AccessMask : uint32_t {
  kAccessReadData = 1u << 0,
  kAccessWriteData = 1u << 1,
  kAccessAppendData = 1u << 2,
  kAccessDelete = 1u << 3,
  kAccessReadAttributes = 1u << 4,
  kAccessWriteAttributes = 1u << 5,
  kAccessListDirectory = 1u << 6,
  kAccessExecute = 1u << 7,
  kAccessSynchronize = 1u << 8,
};

// Create options.
enum CreateOptions : uint32_t {
  kOptDirectoryFile = 1u << 0,
  kOptNonDirectoryFile = 1u << 1,
  kOptSequentialOnly = 1u << 2,       // Hint: doubles cache read-ahead (section 9.1).
  kOptRandomAccess = 1u << 3,
  kOptNoIntermediateBuffering = 1u << 4,  // Disable read caching (section 9).
  kOptWriteThrough = 1u << 5,             // Disable write-behind.
  kOptDeleteOnClose = 1u << 6,
  kOptSynchronousIo = 1u << 7,
};

// NT file attributes.
enum FileAttributes : uint32_t {
  kAttrNormal = 0,
  kAttrReadOnly = 1u << 0,
  kAttrHidden = 1u << 1,
  kAttrSystem = 1u << 2,
  kAttrDirectory = 1u << 4,
  kAttrArchive = 1u << 5,
  kAttrTemporary = 1u << 8,  // Lazy writer will not schedule the pages (section 6.3).
  kAttrCompressed = 1u << 11,
};

// Share-access bits (who else may open the file concurrently).
enum ShareAccess : uint32_t {
  kShareRead = 1u << 0,
  kShareWrite = 1u << 1,
  kShareDelete = 1u << 2,
};

// Information classes for Query/SetInformation.
enum class FileInfoClass : uint8_t {
  kBasic,        // Times + attributes.
  kStandard,     // Sizes, link count, delete-pending, directory flag.
  kDisposition,  // Mark delete-on-close (SetInformation only).
  kEndOfFile,    // Truncate/extend (SetInformation only).
  kAllocation,
  kRename,
  kPosition,
  kName,
};

std::string_view FileInfoClassName(FileInfoClass c);

// File-system control (FSCTL) codes for IRP_MJ_FILE_SYSTEM_CONTROL. The
// "is volume mounted" probe is the paper's most frequent control operation
// (section 8.3: issued up to 40 times/second by name validation).
enum class FsctlCode : uint8_t {
  kIsVolumeMounted,
  kIsPathnameValid,
  kGetVolumeBitmap,
  kGetRetrievalPointers,
  kFilesystemGetStatistics,
  kSetCompression,
  kLockVolume,
  kUnlockVolume,
  kDismountVolume,
  kMarkVolumeDirty,
};

std::string_view FsctlCodeName(FsctlCode c);

// Basic-information block returned by QueryInformation(kBasic) and the
// FastIoQueryBasicInfo path.
struct FileBasicInfo {
  SimTime creation_time;
  SimTime last_access_time;
  SimTime last_write_time;
  uint32_t attributes = kAttrNormal;
};

// Standard-information block (QueryInformation(kStandard)).
struct FileStandardInfo {
  uint64_t allocation_size = 0;
  uint64_t end_of_file = 0;
  uint32_t number_of_links = 1;
  bool delete_pending = false;
  bool directory = false;
};

// One directory entry as returned by directory enumeration.
struct DirEntry {
  std::string name;
  uint32_t attributes = kAttrNormal;
  uint64_t size = 0;
};

// Per-operation parameter block. A real IRP has a union in its stack
// location; a plain struct keeps the model simple and debuggable.
struct IrpParameters {
  // kCreate.
  CreateDisposition disposition = CreateDisposition::kOpen;
  uint32_t desired_access = 0;
  uint32_t create_options = 0;
  uint32_t file_attributes = kAttrNormal;
  uint32_t share_access = kShareRead | kShareWrite;

  // kRead / kWrite.
  uint64_t offset = 0;
  uint32_t length = 0;

  // kQueryInformation / kSetInformation.
  FileInfoClass info_class = FileInfoClass::kBasic;
  uint64_t new_size = 0;          // kEndOfFile / kAllocation.
  bool delete_disposition = false;  // kDisposition.
  std::string rename_target;        // kRename.

  // kFileSystemControl / kDeviceControl.
  FsctlCode fsctl = FsctlCode::kIsVolumeMounted;

  // kLockControl.
  bool lock_release = false;

  // kDirectoryControl.
  bool restart_scan = false;
  std::string search_pattern;  // Empty = all entries.

  // Output buffers (the system buffer of a real IRP). Owned by the caller.
  FileBasicInfo* basic_out = nullptr;
  FileStandardInfo* standard_out = nullptr;
  std::vector<DirEntry>* dir_out = nullptr;

  // kSetInformation(kBasic): new times/attributes.
  FileBasicInfo basic_in;
};

// Result block written by the completing driver.
struct IrpResult {
  NtStatus status = NtStatus::kSuccess;
  uint64_t information = 0;  // Bytes transferred, entries returned, etc.
  CreateAction create_action = CreateAction::kOpened;
};

// The I/O request packet.
struct Irp {
  IrpMajor major = IrpMajor::kCreate;
  uint32_t flags = 0;
  FileObject* file_object = nullptr;
  uint32_t process_id = 0;
  IrpParameters params;
  IrpResult result;
  // Stamped by the I/O manager around the dispatch.
  SimTime issued;
  SimTime completed;
  // For create IRPs the path travels in the packet (the FileObject's name is
  // set only after a successful open in real NT; we keep both).
  std::string path;

  bool IsPagingIo() const { return (flags & kIrpPagingIo) != 0; }
};

}  // namespace ntrace

#endif  // SRC_NTIO_IRP_H_
