// Process registry.
//
// Trace records carry the requesting process (section 3.2), and the analysis
// groups operations per process and per process image name (e.g. the paper's
// observations about explorer.exe, winlogon, loadwc, and "system"). The
// registry is a simple id -> metadata table shared by the workload layer,
// the I/O manager and the trace analyzers.

#ifndef SRC_NTIO_PROCESS_H_
#define SRC_NTIO_PROCESS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/time.h"

namespace ntrace {

constexpr uint32_t kSystemProcessId = 4;  // NT convention: the "System" process.

struct ProcessInfo {
  uint32_t pid = 0;
  std::string image_name;    // "notepad.exe".
  bool takes_user_input = false;  // Section 7: >92% of accesses come from processes that don't.
  SimTime started_at;
  SimTime exited_at;
  bool running = false;
};

class ProcessTable {
 public:
  ProcessTable();

  // Makes pids unique across merged multi-system traces (pids become
  // base + counter). Call before any process is spawned.
  void SetPidBase(uint32_t base) { next_pid_ = base + 8; }

  // Registers a new process and returns its pid.
  uint32_t Spawn(std::string image_name, SimTime now, bool takes_user_input = false);

  void Exit(uint32_t pid, SimTime now);

  const ProcessInfo* Find(uint32_t pid) const;
  const std::string& NameOf(uint32_t pid) const;

  const std::unordered_map<uint32_t, ProcessInfo>& all() const { return table_; }

 private:
  uint32_t next_pid_ = 8;
  std::unordered_map<uint32_t, ProcessInfo> table_;
  std::string unknown_name_ = "<unknown>";
};

}  // namespace ntrace

#endif  // SRC_NTIO_PROCESS_H_
