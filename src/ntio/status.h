// NT status codes for the simulated I/O subsystem.
//
// A subset of NTSTATUS values sufficient for the operations the paper traces:
// the error mix in section 8.4 (12% of opens fail -- 52% name-not-found, 31%
// name-collision; 0.2% of reads fail with end-of-file; control operations
// fail at 8%) requires faithful failure semantics, not just a success bit.

#ifndef SRC_NTIO_STATUS_H_
#define SRC_NTIO_STATUS_H_

#include <string_view>

namespace ntrace {

enum class NtStatus {
  kSuccess,
  // Warnings (operation partially succeeded).
  kEndOfFile,        // Read at or past end of file.
  kBufferOverflow,   // Query returned truncated data.
  kNoMoreFiles,      // Directory enumeration exhausted.
  // Errors.
  kObjectNameNotFound,   // File does not exist.
  kObjectPathNotFound,   // A parent directory does not exist.
  kObjectNameCollision,  // Create of a name that already exists.
  kAccessDenied,
  kSharingViolation,
  kDeletePending,        // Open of a file marked for deletion.
  kFileIsADirectory,
  kNotADirectory,
  kInvalidParameter,
  kInvalidDeviceRequest,
  kNotImplemented,
  kDiskFull,
  kCannotDelete,         // E.g. delete of a read-only or mapped file.
  kDirectoryNotEmpty,
  kLockNotGranted,       // Conflicting byte-range lock.
  // Device errors (fault injection: the media or its bus failed the
  // request; retryable at the discretion of the issuer).
  kDeviceDataError,      // Unrecoverable media error on the transfer.
  kDeviceNotReady,       // Device transiently unavailable.
};

// True for kSuccess and warning statuses (NT_SUCCESS semantics: warnings are
// "informational/success-class"; only real errors return false).
constexpr bool NtSuccess(NtStatus s) {
  return s == NtStatus::kSuccess || s == NtStatus::kEndOfFile || s == NtStatus::kBufferOverflow ||
         s == NtStatus::kNoMoreFiles;
}

constexpr bool NtError(NtStatus s) { return !NtSuccess(s); }

// Device-level failures: the only errors the VM and cache managers retry
// (a bounded number of times) before giving up on a paging transfer.
constexpr bool NtDeviceError(NtStatus s) {
  return s == NtStatus::kDeviceDataError || s == NtStatus::kDeviceNotReady;
}

std::string_view NtStatusName(NtStatus s);

}  // namespace ntrace

#endif  // SRC_NTIO_STATUS_H_
