// The common FCB header.
//
// NT file systems place an FSRTL_COMMON_FCB_HEADER at the start of the
// per-file context they hang off FileObject::FsContext; layered components
// (the cache manager, filter drivers like the paper's tracer) read file
// sizes through it without knowing the file system's own structures. The
// trace records' "current ... file size" field (section 3.2) comes from
// here.

#ifndef SRC_NTIO_FCB_H_
#define SRC_NTIO_FCB_H_

#include <cstdint>

namespace ntrace {

struct FcbHeader {
  uint64_t size = 0;        // End of file.
  uint64_t allocation = 0;  // Allocated bytes (page granular).
};

}  // namespace ntrace

#endif  // SRC_NTIO_FCB_H_
