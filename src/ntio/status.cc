#include "src/ntio/status.h"

namespace ntrace {

std::string_view NtStatusName(NtStatus s) {
  switch (s) {
    case NtStatus::kSuccess:
      return "SUCCESS";
    case NtStatus::kEndOfFile:
      return "END_OF_FILE";
    case NtStatus::kBufferOverflow:
      return "BUFFER_OVERFLOW";
    case NtStatus::kNoMoreFiles:
      return "NO_MORE_FILES";
    case NtStatus::kObjectNameNotFound:
      return "OBJECT_NAME_NOT_FOUND";
    case NtStatus::kObjectPathNotFound:
      return "OBJECT_PATH_NOT_FOUND";
    case NtStatus::kObjectNameCollision:
      return "OBJECT_NAME_COLLISION";
    case NtStatus::kAccessDenied:
      return "ACCESS_DENIED";
    case NtStatus::kSharingViolation:
      return "SHARING_VIOLATION";
    case NtStatus::kDeletePending:
      return "DELETE_PENDING";
    case NtStatus::kFileIsADirectory:
      return "FILE_IS_A_DIRECTORY";
    case NtStatus::kNotADirectory:
      return "NOT_A_DIRECTORY";
    case NtStatus::kInvalidParameter:
      return "INVALID_PARAMETER";
    case NtStatus::kInvalidDeviceRequest:
      return "INVALID_DEVICE_REQUEST";
    case NtStatus::kNotImplemented:
      return "NOT_IMPLEMENTED";
    case NtStatus::kDiskFull:
      return "DISK_FULL";
    case NtStatus::kCannotDelete:
      return "CANNOT_DELETE";
    case NtStatus::kDirectoryNotEmpty:
      return "DIRECTORY_NOT_EMPTY";
    case NtStatus::kLockNotGranted:
      return "LOCK_NOT_GRANTED";
    case NtStatus::kDeviceDataError:
      return "DEVICE_DATA_ERROR";
    case NtStatus::kDeviceNotReady:
      return "DEVICE_NOT_READY";
  }
  return "UNKNOWN";
}

}  // namespace ntrace
