#include "src/ntio/driver.h"

namespace ntrace {

FastIoResult Driver::FastIoRead(DeviceObject*, FileObject&, uint64_t, uint32_t) { return {}; }

FastIoResult Driver::FastIoWrite(DeviceObject*, FileObject&, uint64_t, uint32_t) { return {}; }

bool Driver::FastIoQueryBasicInfo(DeviceObject*, FileObject&, FileBasicInfo*) { return false; }

bool Driver::FastIoQueryStandardInfo(DeviceObject*, FileObject&, FileStandardInfo*) {
  return false;
}

bool Driver::FastIoCheckIfPossible(DeviceObject*, FileObject&, uint64_t, uint32_t, bool) {
  return false;
}

NtStatus ForwardIrp(DeviceObject* device, Irp& irp) {
  DeviceObject* lower = device->lower();
  if (lower == nullptr) {
    irp.result.status = NtStatus::kInvalidDeviceRequest;
    return irp.result.status;
  }
  return lower->driver()->DispatchIrp(lower, irp);
}

FastIoResult ForwardFastIoRead(DeviceObject* device, FileObject& file, uint64_t offset,
                               uint32_t length) {
  DeviceObject* lower = device->lower();
  if (lower == nullptr) {
    return {};
  }
  return lower->driver()->FastIoRead(lower, file, offset, length);
}

FastIoResult ForwardFastIoWrite(DeviceObject* device, FileObject& file, uint64_t offset,
                                uint32_t length) {
  DeviceObject* lower = device->lower();
  if (lower == nullptr) {
    return {};
  }
  return lower->driver()->FastIoWrite(lower, file, offset, length);
}

bool ForwardFastIoQueryBasicInfo(DeviceObject* device, FileObject& file, FileBasicInfo* out) {
  DeviceObject* lower = device->lower();
  if (lower == nullptr) {
    return false;
  }
  return lower->driver()->FastIoQueryBasicInfo(lower, file, out);
}

bool ForwardFastIoQueryStandardInfo(DeviceObject* device, FileObject& file,
                                    FileStandardInfo* out) {
  DeviceObject* lower = device->lower();
  if (lower == nullptr) {
    return false;
  }
  return lower->driver()->FastIoQueryStandardInfo(lower, file, out);
}

bool ForwardFastIoCheckIfPossible(DeviceObject* device, FileObject& file, uint64_t offset,
                                  uint32_t length, bool is_write) {
  DeviceObject* lower = device->lower();
  if (lower == nullptr) {
    return false;
  }
  return lower->driver()->FastIoCheckIfPossible(lower, file, offset, length, is_write);
}

}  // namespace ntrace
