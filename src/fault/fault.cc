#include "src/fault/fault.h"

#include <algorithm>

#include "src/metrics/metrics.h"

namespace ntrace {

std::string_view FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kShipment:
      return "shipment";
    case FaultSite::kDiskRead:
      return "disk-read";
    case FaultSite::kDiskWrite:
      return "disk-write";
  }
  return "unknown";
}

std::string_view CrashKindName(CrashKind kind) {
  switch (kind) {
    case CrashKind::kNone:
      return "none";
    case CrashKind::kWorkerCrash:
      return "worker-crash";
    case CrashKind::kTornWrite:
      return "torn-write";
    case CrashKind::kBitFlip:
      return "bit-flip";
    case CrashKind::kHang:
      return "hang";
  }
  return "unknown";
}

std::string_view TransportFaultKindName(TransportFaultKind kind) {
  switch (kind) {
    case TransportFaultKind::kNone:
      return "none";
    case TransportFaultKind::kReset:
      return "reset";
    case TransportFaultKind::kPartialWrite:
      return "partial-write";
    case TransportFaultKind::kDelay:
      return "delay";
    case TransportFaultKind::kDuplicate:
      return "duplicate";
    case TransportFaultKind::kReorder:
      return "reorder";
    case TransportFaultKind::kStall:
      return "stall";
  }
  return "unknown";
}

TransportFaultInjector::TransportFaultInjector(const TransportFaultPlan& plan, uint64_t seed,
                                               uint64_t stream)
    : plan_(plan), rng_(seed + 0x94D049BB133111EBULL * (stream + 1)) {}

TransportFaultKind TransportFaultInjector::Draw() {
  if (!plan_.enabled()) {
    return TransportFaultKind::kNone;
  }
  ++draws_;
  // Fixed order, most disruptive first; one Bernoulli per enabled kind per
  // frame keeps the stream deterministic even when caps silence a kind
  // (the draw still happens, only the effect is suppressed).
  const struct {
    TransportFaultKind kind;
    double p;
  } kinds[] = {
      {TransportFaultKind::kReset, plan_.reset_probability},
      {TransportFaultKind::kPartialWrite, plan_.partial_write_probability},
      {TransportFaultKind::kStall, plan_.stall_probability},
      {TransportFaultKind::kReorder, plan_.reorder_probability},
      {TransportFaultKind::kDuplicate, plan_.duplicate_probability},
      {TransportFaultKind::kDelay, plan_.delay_probability},
  };
  TransportFaultKind fired = TransportFaultKind::kNone;
  for (const auto& k : kinds) {
    if (k.p <= 0.0) {
      continue;
    }
    const bool hit = rng_.Bernoulli(k.p);
    if (hit && fired == TransportFaultKind::kNone) {
      uint64_t& count = injected_[static_cast<size_t>(k.kind) - 1];
      if (plan_.max_per_kind == 0 || count < plan_.max_per_kind) {
        ++count;
        fired = k.kind;
      }
    }
  }
  return fired;
}

namespace {

// Independent per-site streams: seed each site's Rng from (seed, site index)
// through the same SplitMix-style scramble Rng::Seed applies, offset by a
// large odd constant so adjacent sites never alias.
uint64_t SiteSeed(uint64_t seed, size_t site) {
  return seed + 0x9E3779B97F4A7C15ULL * (site + 1);
}

// Per-site evaluation/injection counters (DESIGN.md §8), aggregated over
// every injector in the fleet.
struct FaultMetrics {
  Counter* evaluations[kNumFaultSites];
  Counter* injected[kNumFaultSites];

  static FaultMetrics& Get() {
    static FaultMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      FaultMetrics fm;
      fm.evaluations[0] =
          &r.GetCounter("ntrace_fault_shipment_evaluations_total",
                        "Operations evaluated against the shipment fault plan");
      fm.evaluations[1] = &r.GetCounter("ntrace_fault_disk_read_evaluations_total",
                                        "Operations evaluated against the disk-read fault plan");
      fm.evaluations[2] =
          &r.GetCounter("ntrace_fault_disk_write_evaluations_total",
                        "Operations evaluated against the disk-write fault plan");
      fm.injected[0] = &r.GetCounter("ntrace_fault_shipment_injected_total",
                                     "Shipment failures injected");
      fm.injected[1] = &r.GetCounter("ntrace_fault_disk_read_injected_total",
                                     "Disk-read media errors injected");
      fm.injected[2] = &r.GetCounter("ntrace_fault_disk_write_injected_total",
                                     "Disk-write media errors injected");
      return fm;
    }();
    return m;
  }
};

}  // namespace

FaultInjector::FaultInjector(uint64_t seed) {
  for (size_t i = 0; i < sites_.size(); ++i) {
    sites_[i].rng.Seed(SiteSeed(seed, i));
  }
}

FaultInjector::FaultInjector(const FaultConfig& config, uint64_t stream)
    : FaultInjector(config.seed + 0xBF58476D1CE4E5B9ULL * stream) {
  SetPlan(FaultSite::kShipment, config.shipment);
  SetPlan(FaultSite::kDiskRead, config.disk_read);
  SetPlan(FaultSite::kDiskWrite, config.disk_write);
}

void FaultInjector::SetPlan(FaultSite site, FaultPlan plan) {
  site_(site).plan = std::move(plan);
}

FaultOutcome FaultInjector::Evaluate(FaultSite site, SimTime now) {
  SiteState& s = site_(site);
  if (!s.plan.enabled()) {
    return {};
  }
  ++s.evaluations;
  FaultMetrics& metrics = FaultMetrics::Get();
  metrics.evaluations[static_cast<size_t>(site)]->Inc();

  // Hard outages fail deterministically: the link/device is down, nothing
  // was delivered, no randomness involved.
  for (const auto& [start, end] : s.plan.outages) {
    if (now >= start && now < end) {
      ++s.injected;
      metrics.injected[static_cast<size_t>(site)]->Inc();
      return {true, false};
    }
  }

  double p = s.plan.probability;
  if (s.plan.burst_period.ticks() > 0 && s.plan.burst_length.ticks() > 0) {
    const int64_t phase = now.ticks() % s.plan.burst_period.ticks();
    if (phase < s.plan.burst_length.ticks()) {
      p = std::max(p, s.plan.burst_probability);
    }
  }
  FaultOutcome outcome;
  outcome.fail = s.rng.Bernoulli(p);
  if (outcome.fail) {
    ++s.injected;
    metrics.injected[static_cast<size_t>(site)]->Inc();
    if (s.plan.ack_loss_fraction > 0.0) {
      outcome.ack_lost = s.rng.Bernoulli(s.plan.ack_loss_fraction);
    }
  }
  return outcome;
}

}  // namespace ntrace
