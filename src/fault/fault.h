// Deterministic fault injection.
//
// The paper's collection pipeline ran unattended for four weeks on ~45
// machines shipping ~190M records over a network, and its trace driver
// carried explicit overflow detection (section 3.2) -- machinery that never
// fires unless something in the pipeline can actually fail. This subsystem
// provides the failures: a seeded, deterministic FaultInjector with one
// FaultPlan per injection site (shipment link, disk reads, disk writes).
// Plans combine a base per-operation probability, periodic burst windows of
// elevated failure, and scheduled hard outages. Every draw comes from a
// per-site RNG stream forked from one seed, so enabling a plan at one site
// never perturbs the schedule of another, and the same seed always produces
// the identical fault schedule (tests assert this).

#ifndef SRC_FAULT_FAULT_H_
#define SRC_FAULT_FAULT_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/base/time.h"

namespace ntrace {

// Where a fault can be injected.
enum class FaultSite : uint8_t {
  kShipment,   // Agent -> collection-server buffer shipment.
  kDiskRead,   // Local media read (paging or non-cached).
  kDiskWrite,  // Local media write (paging or non-cached).
};
constexpr int kNumFaultSites = 3;

std::string_view FaultSiteName(FaultSite site);

// The fault schedule of one site.
struct FaultPlan {
  // Base per-operation failure probability.
  double probability = 0.0;

  // Periodic burst windows: within [k*period, k*period + length) the failure
  // probability is raised to burst_probability. A zero period disables bursts.
  SimDuration burst_period{};
  SimDuration burst_length{};
  double burst_probability = 1.0;

  // Scheduled hard outages: inside any [start, end) window every operation
  // fails unconditionally (no randomness -- models a dead link/device).
  std::vector<std::pair<SimTime, SimTime>> outages;

  // Shipment site only: fraction of injected failures where the payload was
  // actually delivered but the acknowledgement was lost, so the sender
  // retries and the receiver sees a duplicate sequence number.
  double ack_loss_fraction = 0.0;

  bool enabled() const {
    return probability > 0.0 ||
           (burst_period.ticks() > 0 && burst_length.ticks() > 0 && burst_probability > 0.0) ||
           !outages.empty();
  }
};

// Crash fault kinds (DESIGN.md §10). Unlike the per-operation sites above,
// a crash kills a whole simulated system mid-run: the fleet supervisor
// arms the plan on the victim system's collection path and the worker dies
// (deterministically, at a fixed delivered-record count) the way a traced
// machine in the study would -- leaving a partial trace spool behind. The
// torn-write and bit-flip kinds additionally damage the tail of that spool
// segment, exercising the salvage reader.
enum class CrashKind : uint8_t {
  kNone = 0,
  kWorkerCrash,  // Process death: the partial segment ends at a frame boundary.
  kTornWrite,    // Death mid-write: the segment's final frame is truncated.
  kBitFlip,      // Media corruption: one bit of the segment flips.
  kHang,         // Worker stops making progress until the watchdog cancels it.
};

std::string_view CrashKindName(CrashKind kind);

// Transport fault kinds (DESIGN.md §11). Unlike the per-operation sites
// above -- which model *semantic* failures the agent observes (a shipment
// that never arrives) -- these model the mechanics of a real network link
// under the collection tier: the byte stream tears, duplicates, reorders or
// stalls, and the session layer (src/net) must deliver every record exactly
// once anyway. Injected on the agent side of the socket; the server has to
// survive whatever the wire does to it.
enum class TransportFaultKind : uint8_t {
  kNone = 0,
  kReset,         // Connection closed abruptly before the frame is sent.
  kPartialWrite,  // A prefix of the frame reaches the wire, then the
                  // connection resets (torn frame on the server side).
  kDelay,         // Frame held back briefly before transmission.
  kDuplicate,     // Frame transmitted twice back to back.
  kReorder,       // Frame held back and sent after its successor.
  kStall,         // Socket goes silent long enough to trip deadlines
                  // (agent send timeout / server slow-client eviction).
};
constexpr int kNumTransportFaultKinds = 6;  // Excluding kNone.

std::string_view TransportFaultKindName(TransportFaultKind kind);

// Per-connection transport fault schedule. Each kind fires independently
// with its own per-frame probability; evaluation order is fixed (reset,
// partial-write, stall, reorder, duplicate, delay -- most to least
// disruptive) and the first kind to fire wins, so a given (seed, frame
// index) always injects the same fault. Like FaultPlan, a default
// constructed plan injects nothing and draws nothing.
struct TransportFaultPlan {
  double reset_probability = 0.0;
  double partial_write_probability = 0.0;
  double delay_probability = 0.0;
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  double stall_probability = 0.0;
  // Injections per kind per connection lifetime; 0 = unlimited. Tests cap
  // the expensive kinds (stall sleeps in wall clock) without giving up
  // determinism.
  uint32_t max_per_kind = 0;
  // Wall-clock magnitudes. Delay is cosmetic jitter; the stall must exceed
  // the peer's deadline to be observable.
  double delay_ms = 2.0;
  double stall_ms = 400.0;

  bool enabled() const {
    return reset_probability > 0.0 || partial_write_probability > 0.0 ||
           delay_probability > 0.0 || duplicate_probability > 0.0 || reorder_probability > 0.0 ||
           stall_probability > 0.0;
  }
};

// Draws transport faults for one connection from its own seeded stream
// (stream = agent id, forked the same way FaultInjector forks per-system
// streams). Deterministic: the k-th draw of a given (seed, stream) is the
// same fault on every run, independent of wall clock or scheduling.
class TransportFaultInjector {
 public:
  TransportFaultInjector() = default;
  TransportFaultInjector(const TransportFaultPlan& plan, uint64_t seed, uint64_t stream);

  // Evaluates one outbound frame. Returns the first kind that fires (fixed
  // evaluation order), or kNone.
  TransportFaultKind Draw();

  const TransportFaultPlan& plan() const { return plan_; }
  uint64_t draws() const { return draws_; }
  uint64_t injected(TransportFaultKind kind) const {
    return kind == TransportFaultKind::kNone ? 0 : injected_[static_cast<size_t>(kind) - 1];
  }

 private:
  TransportFaultPlan plan_;
  Rng rng_;
  uint64_t draws_ = 0;
  uint64_t injected_[kNumTransportFaultKinds] = {};
};

struct CrashPlan {
  CrashKind kind = CrashKind::kNone;
  // 1-based id of the victim system (0 disables the plan).
  uint32_t system_id = 0;
  // Fires when the victim has delivered this many trace records to its
  // collection server -- a deterministic event count, independent of wall
  // clock, thread count and scheduling.
  uint64_t at_event = 0;
  // Which simulation attempt crashes: 1 = first run only (the restart
  // succeeds), 0 = every attempt (the system is permanently down until a
  // later fleet invocation resumes with the plan disabled).
  int at_attempt = 1;
  // kTornWrite: bytes chopped off the end of the partial segment.
  uint32_t tear_bytes = 37;
  // kBitFlip: bit index flipped, counted from the middle of the segment
  // (deterministic damage without a separate RNG stream).
  uint32_t flip_bit = 3;

  bool enabled() const { return kind != CrashKind::kNone && system_id != 0; }
};

// Result of evaluating one operation against a site's plan.
struct FaultOutcome {
  bool fail = false;
  // Only meaningful when fail: the operation succeeded on the far side but
  // the initiator observes a failure (lost acknowledgement).
  bool ack_lost = false;
};

// Per-fleet fault schedule: one plan per site plus the fault-stream seed.
// Strictly opt-in -- a default-constructed config injects nothing and causes
// zero RNG draws, so runs without faults are bit-identical to runs that
// predate the fault layer.
struct FaultConfig {
  uint64_t seed = 0xFA17;
  FaultPlan shipment;
  FaultPlan disk_read;
  FaultPlan disk_write;
  // Worker-crash schedule, consumed by the fleet supervisor rather than the
  // per-operation injector; deliberately excluded from enabled() so arming
  // a crash never changes whether a system builds a FaultInjector (the
  // simulated stream must be bit-identical with and without the crash).
  CrashPlan crash;

  bool enabled() const {
    return shipment.enabled() || disk_read.enabled() || disk_write.enabled();
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0xFA17);
  // Builds an injector carrying the config's plans, seeded per `stream` (the
  // fleet passes the system id so every machine gets an independent stream).
  FaultInjector(const FaultConfig& config, uint64_t stream);

  void SetPlan(FaultSite site, FaultPlan plan);
  const FaultPlan& plan(FaultSite site) const { return site_(site).plan; }
  bool enabled(FaultSite site) const { return site_(site).plan.enabled(); }

  // Evaluates one operation at simulated time `now`. Deterministic: the
  // outcome is a pure function of (seed, site, call index, now).
  FaultOutcome Evaluate(FaultSite site, SimTime now);
  bool ShouldFail(FaultSite site, SimTime now) { return Evaluate(site, now).fail; }

  uint64_t evaluations(FaultSite site) const { return site_(site).evaluations; }
  uint64_t injected(FaultSite site) const { return site_(site).injected; }

 private:
  struct SiteState {
    FaultPlan plan;
    Rng rng;
    uint64_t evaluations = 0;
    uint64_t injected = 0;
  };

  const SiteState& site_(FaultSite site) const {
    return sites_[static_cast<size_t>(site)];
  }
  SiteState& site_(FaultSite site) { return sites_[static_cast<size_t>(site)]; }

  std::array<SiteState, kNumFaultSites> sites_;
};

}  // namespace ntrace

#endif  // SRC_FAULT_FAULT_H_
