// Process-wide observability: the ntrace metrics registry.
//
// The paper's headline results are counts the kernel kept about itself --
// FastIO vs IRP shares (section 10), cache hit ratios and read-ahead
// effectiveness (section 9) -- yet until this layer the simulator computed
// them only after-the-fact from trace records. The metrics registry gives
// every subsystem named, always-on counters that are cheap enough for the
// hottest paths and exportable live, the way a production serving stack
// exposes its internals.
//
// Primitives:
//   * Counter   -- monotonically increasing. Per-thread sharded: each
//     increment lands on one of kShards cache-line-sized slots selected by
//     a thread-local slot id, so the fleet worker pool never contends on a
//     shared cache line; Value() aggregates the shards on read.
//   * Gauge     -- a settable/addable signed value (e.g. retry backlog).
//   * Histogram -- fixed log2 buckets (upper bounds 1, 2, 4, ... 2^39,
//     +Inf) for latency/size distributions. Relaxed atomic buckets.
//
// All mutation is wait-free relaxed atomics; registration (name -> object)
// takes a mutex and is expected once per call site (instrument sites cache
// the returned reference in a function-local static bundle). Snapshots are
// consistent enough for monitoring: individual values are atomic, the set
// is not read under a global lock.
//
// The registry is process-wide (`MetricsRegistry::Global()`) and cumulative.
// Consumers that need per-run values (RunFleet, bench_fleet) snapshot
// before and after and keep the delta -- see MetricsSnapshot::DeltaFrom.
// `NTRACE_METRICS=0` (or SetMetricsEnabled(false)) turns every mutation
// into an early return so the overhead of the layer itself is measurable
// (bench_fleet reports it; budget < 3% of records/sec).

#ifndef SRC_METRICS_METRICS_H_
#define SRC_METRICS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ntrace {

namespace metrics_internal {

// Runtime kill switch. Initialized from NTRACE_METRICS by
// MetricsRegistry::Global(); flippable at any time (bench_fleet uses this
// to measure the layer's own overhead).
inline std::atomic<bool> g_enabled{true};

// Dense per-thread slot id, assigned on a thread's first metric touch.
// The sentinel + constant-initialized thread_local avoids the per-access
// init guard a function-local `thread_local const` would pay.
size_t AllocateShardSlot();
inline constexpr size_t kUnassignedSlot = static_cast<size_t>(-1);
inline thread_local size_t t_shard_slot = kUnassignedSlot;
inline size_t ThreadShardSlot() {
  size_t slot = t_shard_slot;
  if (slot == kUnassignedSlot) [[unlikely]] {
    slot = t_shard_slot = AllocateShardSlot();
  }
  return slot;
}

}  // namespace metrics_internal

inline bool MetricsEnabled() {
  return metrics_internal::g_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);

// Monotonic counter, sharded across cache lines by thread.
class Counter {
 public:
  static constexpr size_t kShards = 16;  // Power of two.

  void Inc(uint64_t n = 1) {
    if (!MetricsEnabled()) {
      return;
    }
    shards_[metrics_internal::ThreadShardSlot() & (kShards - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  // Sum over shards. Monotone per shard, so concurrent reads see a value
  // between the counts at the start and end of the read.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  std::string name_;
  std::string help_;
  Shard shards_[kShards];
};

// Signed instantaneous value.
class Gauge {
 public:
  void Set(int64_t v) {
    if (MetricsEnabled()) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  void Add(int64_t delta) {
    if (MetricsEnabled()) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, std::string help) : name_(std::move(name)), help_(std::move(help)) {}

  std::string name_;
  std::string help_;
  std::atomic<int64_t> value_{0};
};

// Fixed log2-bucket histogram for sizes and latencies.
class Histogram {
 public:
  // Finite upper bounds 2^0 .. 2^(kNumBounds-1); one more bucket for +Inf.
  static constexpr size_t kNumBounds = 40;
  static constexpr size_t kNumBuckets = kNumBounds + 1;

  static constexpr uint64_t BucketUpperBound(size_t i) { return uint64_t{1} << i; }

  // Index of the bucket counting `v`: the first i with v <= 2^i, or the
  // overflow bucket. Power-of-two values land exactly on their own bound.
  // Inline: an out-of-line call here is measurable on the copy-read path.
  static size_t BucketIndex(uint64_t v) {
    if (v <= 1) {
      return 0;
    }
    const size_t i = static_cast<size_t>(std::bit_width(v - 1));
    return i < kNumBounds ? i : kNumBounds;
  }

  void Observe(uint64_t v) {
    if (!MetricsEnabled()) {
      return;
    }
    // Two fetch_adds, not three: the observation count is the bucket sum,
    // derived on read (Count()) instead of maintained on the hot path.
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t Count() const {
    uint64_t total = 0;
    for (const auto& b : buckets_) {
      total += b.load(std::memory_order_relaxed);
    }
    return total;
  }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const { return buckets_[i].load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  std::string name_;
  std::string help_;
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

// Point-in-time copy of a registry, name-sorted. Also the vehicle for
// per-run deltas (FleetResult::metrics) and for JSON / Prometheus export.
struct CounterSnapshot {
  std::string name;
  std::string help;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::string help;
  int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::string help;
  uint64_t count = 0;
  uint64_t sum = 0;
  // Non-cumulative per-bucket counts, size Histogram::kNumBuckets.
  std::vector<uint64_t> buckets;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  // Lookup helpers; a missing name reads as zero / nullptr.
  uint64_t CounterValue(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;

  // Counter and histogram values minus `base` (entries absent from `base`
  // keep their value); gauges keep their current value -- a gauge is a
  // level, not a flow. Used to scope the cumulative global registry to one
  // fleet run.
  MetricsSnapshot DeltaFrom(const MetricsSnapshot& base) const;

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {"count": c,
  // "sum": s, "buckets": [[le, n], ..., ["+Inf", n]]}}} with name-sorted
  // keys and sparse (non-zero) buckets.
  std::string ToJson() const;

  // Prometheus text exposition format (# HELP / # TYPE, cumulative
  // histogram buckets with le labels).
  std::string ToPrometheusText() const;
};

// Named metric registry. Get* registers on first use and returns the same
// object for the same name thereafter. Names must be unique across kinds
// (Prometheus namespace rules); a kind collision asserts.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every subsystem instruments into. First call
  // applies the NTRACE_METRICS environment knob.
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name, std::string_view help = "");
  Gauge& GetGauge(std::string_view name, std::string_view help = "");
  Histogram& GetHistogram(std::string_view name, std::string_view help = "");

  MetricsSnapshot Snapshot() const;

  size_t size() const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  mutable std::mutex mu_;
  std::map<std::string, Kind, std::less<>> kinds_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace ntrace

#endif  // SRC_METRICS_METRICS_H_
