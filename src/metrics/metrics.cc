#include "src/metrics/metrics.h"

#include <cassert>
#include <cinttypes>
#include <cstdlib>
#include <cstring>

namespace ntrace {

namespace metrics_internal {

size_t AllocateShardSlot() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace metrics_internal

void SetMetricsEnabled(bool enabled) {
  metrics_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = [] {
    auto* r = new MetricsRegistry();
    // NTRACE_METRICS=0 disables every mutation (the bench overhead knob).
    const char* env = std::getenv("NTRACE_METRICS");
    if (env != nullptr &&
        (std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0 ||
         std::strcmp(env, "off") == 0)) {
      SetMetricsEnabled(false);
    }
    return r;
  }();
  return *instance;
}

Counter& MetricsRegistry::GetCounter(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) {
    return *it->second;
  }
  assert(kinds_.find(name) == kinds_.end() && "metric name registered with another kind");
  std::string key(name);
  kinds_.emplace(key, Kind::kCounter);
  auto [pos, inserted] =
      counters_.emplace(key, std::unique_ptr<Counter>(new Counter(key, std::string(help))));
  (void)inserted;
  return *pos->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    return *it->second;
  }
  assert(kinds_.find(name) == kinds_.end() && "metric name registered with another kind");
  std::string key(name);
  kinds_.emplace(key, Kind::kGauge);
  auto [pos, inserted] =
      gauges_.emplace(key, std::unique_ptr<Gauge>(new Gauge(key, std::string(help))));
  (void)inserted;
  return *pos->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return *it->second;
  }
  assert(kinds_.find(name) == kinds_.end() && "metric name registered with another kind");
  std::string key(name);
  auto [pos, inserted] =
      histograms_.emplace(key, std::unique_ptr<Histogram>(new Histogram(key, std::string(help))));
  (void)inserted;
  kinds_.emplace(std::move(key), Kind::kHistogram);
  return *pos->second;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kinds_.size();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->help(), c->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->help(), g->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.help = h->help();
    hs.count = h->Count();
    hs.sum = h->Sum();
    hs.buckets.resize(Histogram::kNumBuckets);
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      hs.buckets[i] = h->BucketCount(i);
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) {
      return c.value;
    }
  }
  return 0;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name) const {
  for (const GaugeSnapshot& g : gauges) {
    if (g.name == name) {
      return g.value;
    }
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) {
      return &h;
    }
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::DeltaFrom(const MetricsSnapshot& base) const {
  MetricsSnapshot out = *this;
  for (CounterSnapshot& c : out.counters) {
    c.value -= base.CounterValue(c.name);
  }
  for (HistogramSnapshot& h : out.histograms) {
    const HistogramSnapshot* b = base.FindHistogram(h.name);
    if (b == nullptr) {
      continue;
    }
    h.count -= b->count;
    h.sum -= b->sum;
    for (size_t i = 0; i < h.buckets.size() && i < b->buckets.size(); ++i) {
      h.buckets[i] -= b->buckets[i];
    }
  }
  return out;
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
    }
    out->push_back(c);
  }
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    AppendEscaped(&out, counters[i].name);
    out += "\": ";
    AppendU64(&out, counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    AppendEscaped(&out, gauges[i].name);
    out += "\": ";
    AppendI64(&out, gauges[i].value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    AppendEscaped(&out, h.name);
    out += "\": {\"count\": ";
    AppendU64(&out, h.count);
    out += ", \"sum\": ";
    AppendU64(&out, h.sum);
    out += ", \"buckets\": [";
    bool first = true;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) {
        continue;  // Sparse: log2 bucket arrays are mostly empty.
      }
      if (!first) {
        out += ", ";
      }
      first = false;
      out += "[";
      if (b < Histogram::kNumBounds) {
        AppendU64(&out, Histogram::BucketUpperBound(b));
      } else {
        out += "\"+Inf\"";
      }
      out += ", ";
      AppendU64(&out, h.buckets[b]);
      out += "]";
    }
    out += "]}";
  }
  out += histograms.empty() ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const CounterSnapshot& c : counters) {
    if (!c.help.empty()) {
      out += "# HELP " + c.name + " " + c.help + "\n";
    }
    out += "# TYPE " + c.name + " counter\n";
    out += c.name + " ";
    AppendU64(&out, c.value);
    out += "\n";
  }
  for (const GaugeSnapshot& g : gauges) {
    if (!g.help.empty()) {
      out += "# HELP " + g.name + " " + g.help + "\n";
    }
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + " ";
    AppendI64(&out, g.value);
    out += "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    if (!h.help.empty()) {
      out += "# HELP " + h.name + " " + h.help + "\n";
    }
    out += "# TYPE " + h.name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      // Empty leading/mid buckets are elided except the final +Inf bound,
      // which Prometheus requires.
      if (h.buckets[b] == 0 && b + 1 < h.buckets.size()) {
        continue;
      }
      out += h.name + "_bucket{le=\"";
      if (b < Histogram::kNumBounds) {
        AppendU64(&out, Histogram::BucketUpperBound(b));
      } else {
        out += "+Inf";
      }
      out += "\"} ";
      AppendU64(&out, cumulative);
      out += "\n";
    }
    out += h.name + "_sum ";
    AppendU64(&out, h.sum);
    out += "\n";
    out += h.name + "_count ";
    AppendU64(&out, h.count);
    out += "\n";
  }
  return out;
}

}  // namespace ntrace
