#include "src/win32/win32_api.h"

#include <algorithm>

namespace ntrace {
namespace {

CreateDisposition MapDisposition(Win32Disposition d) {
  switch (d) {
    case Win32Disposition::kCreateNew:
      return CreateDisposition::kCreate;
    case Win32Disposition::kCreateAlways:
      return CreateDisposition::kOverwriteIf;
    case Win32Disposition::kOpenExisting:
      return CreateDisposition::kOpen;
    case Win32Disposition::kOpenAlways:
      return CreateDisposition::kOpenIf;
    case Win32Disposition::kTruncateExisting:
      return CreateDisposition::kOverwrite;
  }
  return CreateDisposition::kOpen;
}

uint32_t MapOptions(uint32_t win32_flags) {
  uint32_t opts = kOptNonDirectoryFile | kOptSynchronousIo;
  if ((win32_flags & kW32FlagSequentialScan) != 0) {
    opts |= kOptSequentialOnly;
  }
  if ((win32_flags & kW32FlagWriteThrough) != 0) {
    opts |= kOptWriteThrough;
  }
  if ((win32_flags & kW32FlagNoBuffering) != 0) {
    opts |= kOptNoIntermediateBuffering;
  }
  if ((win32_flags & kW32FlagDeleteOnClose) != 0) {
    opts |= kOptDeleteOnClose;
  }
  if ((win32_flags & kW32FlagRandomAccess) != 0) {
    opts |= kOptRandomAccess;
  }
  return opts;
}

uint32_t MapAttributes(uint32_t win32_flags) {
  uint32_t attrs = kAttrNormal;
  if ((win32_flags & kW32AttrTemporary) != 0) {
    attrs |= kAttrTemporary;
  }
  return attrs;
}

std::string VolumePrefixOf(const std::string& path) {
  // "C:\..." -> "C:"; "\\\\server\\share\\..." -> "\\\\server\\share".
  if (path.size() >= 2 && path[1] == ':') {
    return path.substr(0, 2);
  }
  if (path.size() > 2 && path[0] == '\\' && path[1] == '\\') {
    size_t third = path.find('\\', 2);
    if (third != std::string::npos) {
      size_t fourth = path.find('\\', third + 1);
      return path.substr(0, fourth == std::string::npos ? path.size() : fourth);
    }
  }
  return "";
}

}  // namespace

Win32Api::Win32Api(IoManager& io, Win32Options options) : io_(io), options_(options) {}

void Win32Api::MaybeVolumeCheck(const std::string& path, uint32_t process_id) {
  if (!options_.volume_check_on_open) {
    return;
  }
  const std::string prefix = VolumePrefixOf(path);
  if (!prefix.empty()) {
    io_.FsctlVolume(prefix, FsctlCode::kIsVolumeMounted, process_id);
  }
}

FileObject* Win32Api::CreateFile(const std::string& path, uint32_t desired_access,
                                 Win32Disposition disposition, uint32_t win32_flags,
                                 uint32_t process_id, NtStatus* status_out) {
  MaybeVolumeCheck(path, process_id);
  CreateRequest req;
  req.path = path;
  req.disposition = MapDisposition(disposition);
  req.desired_access = desired_access;
  req.create_options = MapOptions(win32_flags);
  req.file_attributes = MapAttributes(win32_flags);
  req.process_id = process_id;
  CreateResult r = io_.Create(req);
  if (status_out != nullptr) {
    *status_out = r.status;
  }
  return r.file;
}

bool Win32Api::ReadFile(FileObject& file, uint32_t length, uint64_t* bytes_read) {
  const IoResult r = io_.ReadNext(file, length);
  if (bytes_read != nullptr) {
    *bytes_read = r.bytes;
  }
  return NtSuccess(r.status) && r.status != NtStatus::kEndOfFile;
}

bool Win32Api::WriteFile(FileObject& file, uint32_t length, uint64_t* bytes_written) {
  const IoResult r = io_.WriteNext(file, length);
  if (bytes_written != nullptr) {
    *bytes_written = r.bytes;
  }
  return NtSuccess(r.status);
}

void Win32Api::SetFilePointer(FileObject& file, uint64_t offset) {
  file.current_byte_offset = offset;
}

bool Win32Api::SetEndOfFile(FileObject& file) {
  return NtSuccess(io_.SetEndOfFile(file, file.current_byte_offset));
}

bool Win32Api::FlushFileBuffers(FileObject& file) { return NtSuccess(io_.Flush(file)); }

void Win32Api::CloseHandle(FileObject& file) { io_.CloseHandle(file); }

bool Win32Api::DeleteFile(const std::string& path, uint32_t process_id, NtStatus* status_out) {
  MaybeVolumeCheck(path, process_id);
  CreateRequest req;
  req.path = path;
  req.disposition = CreateDisposition::kOpen;
  req.desired_access = kAccessDelete;
  req.create_options = kOptNonDirectoryFile;
  req.process_id = process_id;
  CreateResult open = io_.Create(req);
  if (status_out != nullptr) {
    *status_out = open.status;
  }
  if (open.file == nullptr) {
    return false;
  }
  const NtStatus set = io_.SetDispositionDelete(*open.file, true);
  if (status_out != nullptr) {
    *status_out = set;
  }
  io_.CloseHandle(*open.file);
  return NtSuccess(set);
}

bool Win32Api::MoveFile(const std::string& from, const std::string& to, uint32_t process_id,
                        NtStatus* status_out) {
  MaybeVolumeCheck(from, process_id);
  CreateRequest req;
  req.path = from;
  req.disposition = CreateDisposition::kOpen;
  req.desired_access = kAccessDelete | kAccessWriteAttributes;
  req.process_id = process_id;
  CreateResult open = io_.Create(req);
  if (status_out != nullptr) {
    *status_out = open.status;
  }
  if (open.file == nullptr) {
    return false;
  }
  const NtStatus status = io_.Rename(*open.file, to);
  if (status_out != nullptr) {
    *status_out = status;
  }
  io_.CloseHandle(*open.file);
  return NtSuccess(status);
}

std::optional<FileBasicInfo> Win32Api::GetFileAttributes(const std::string& path,
                                                         uint32_t process_id) {
  MaybeVolumeCheck(path, process_id);
  CreateRequest req;
  req.path = path;
  req.disposition = CreateDisposition::kOpen;
  req.desired_access = kAccessReadAttributes;
  req.process_id = process_id;
  CreateResult open = io_.Create(req);
  if (open.file == nullptr) {
    return std::nullopt;
  }
  FileBasicInfo info;
  const NtStatus status = io_.QueryBasicInfo(*open.file, &info);
  io_.CloseHandle(*open.file);
  if (NtError(status)) {
    return std::nullopt;
  }
  return info;
}

bool Win32Api::SetFileAttributes(const std::string& path, const FileBasicInfo& info,
                                 uint32_t process_id) {
  CreateRequest req;
  req.path = path;
  req.disposition = CreateDisposition::kOpen;
  req.desired_access = kAccessWriteAttributes;
  req.process_id = process_id;
  CreateResult open = io_.Create(req);
  if (open.file == nullptr) {
    return false;
  }
  const NtStatus status = io_.SetBasicInfo(*open.file, info);
  io_.CloseHandle(*open.file);
  return NtSuccess(status);
}

std::optional<uint64_t> Win32Api::GetFileSize(const std::string& path, uint32_t process_id) {
  CreateRequest req;
  req.path = path;
  req.disposition = CreateDisposition::kOpen;
  req.desired_access = kAccessReadAttributes;
  req.process_id = process_id;
  CreateResult open = io_.Create(req);
  if (open.file == nullptr) {
    return std::nullopt;
  }
  FileStandardInfo info;
  const NtStatus status = io_.QueryStandardInfo(*open.file, &info);
  io_.CloseHandle(*open.file);
  if (NtError(status)) {
    return std::nullopt;
  }
  return info.end_of_file;
}

bool Win32Api::CreateDirectory(const std::string& path, uint32_t process_id,
                               NtStatus* status_out) {
  MaybeVolumeCheck(path, process_id);
  CreateRequest req;
  req.path = path;
  req.disposition = CreateDisposition::kCreate;
  req.desired_access = kAccessListDirectory;
  req.create_options = kOptDirectoryFile;
  req.process_id = process_id;
  CreateResult open = io_.Create(req);
  if (status_out != nullptr) {
    *status_out = open.status;
  }
  if (open.file == nullptr) {
    return false;
  }
  io_.CloseHandle(*open.file);
  return true;
}

bool Win32Api::RemoveDirectory(const std::string& path, uint32_t process_id) {
  CreateRequest req;
  req.path = path;
  req.disposition = CreateDisposition::kOpen;
  req.desired_access = kAccessDelete;
  req.create_options = kOptDirectoryFile;
  req.process_id = process_id;
  CreateResult open = io_.Create(req);
  if (open.file == nullptr) {
    return false;
  }
  const NtStatus status = io_.SetDispositionDelete(*open.file, true);
  io_.CloseHandle(*open.file);
  return NtSuccess(status);
}

std::optional<uint64_t> Win32Api::CopyFile(const std::string& from, const std::string& to,
                                           uint32_t process_id) {
  FileObject* src =
      CreateFile(from, kAccessReadData | kAccessReadAttributes, Win32Disposition::kOpenExisting,
                 kW32FlagSequentialScan, process_id);
  if (src == nullptr) {
    return std::nullopt;
  }
  FileStandardInfo std_info;
  io_.QueryStandardInfo(*src, &std_info);
  FileBasicInfo basic;
  io_.QueryBasicInfo(*src, &basic);
  FileObject* dst = CreateFile(to, kAccessWriteData | kAccessWriteAttributes,
                               Win32Disposition::kCreateAlways, 0, process_id);
  if (dst == nullptr) {
    io_.CloseHandle(*src);
    return std::nullopt;
  }
  uint64_t remaining = std_info.end_of_file;
  uint64_t copied = 0;
  while (remaining > 0) {
    const uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(remaining, 65536));
    uint64_t got = 0;
    if (!ReadFile(*src, chunk, &got) || got == 0) {
      break;
    }
    uint64_t put = 0;
    WriteFile(*dst, static_cast<uint32_t>(got), &put);
    copied += put;
    remaining -= got;
  }
  // CopyFile preserves the source times on the destination.
  io_.SetBasicInfo(*dst, basic);
  io_.CloseHandle(*dst);
  io_.CloseHandle(*src);
  return copied;
}

bool Win32Api::FindFirstFile(const std::string& directory, const std::string& pattern,
                             uint32_t process_id, FileObject** handle_out,
                             std::vector<FindData>* out) {
  MaybeVolumeCheck(directory, process_id);
  CreateRequest req;
  req.path = directory;
  req.disposition = CreateDisposition::kOpen;
  req.desired_access = kAccessListDirectory;
  req.create_options = kOptDirectoryFile;
  req.process_id = process_id;
  CreateResult open = io_.Create(req);
  if (open.file == nullptr) {
    *handle_out = nullptr;
    return false;
  }
  *handle_out = open.file;
  std::vector<DirEntry> entries;
  const NtStatus status = io_.QueryDirectory(*open.file, /*restart_scan=*/true, pattern,
                                             &entries);
  if (status == NtStatus::kNoMoreFiles || entries.empty()) {
    return NtSuccess(status) && !entries.empty();
  }
  for (const DirEntry& e : entries) {
    out->push_back(FindData{e.name, e.attributes, e.size});
  }
  return true;
}

bool Win32Api::FindNextFile(FileObject& handle, std::vector<FindData>* out) {
  std::vector<DirEntry> entries;
  const NtStatus status = io_.QueryDirectory(handle, /*restart_scan=*/false, "", &entries);
  if (status == NtStatus::kNoMoreFiles || entries.empty()) {
    return false;
  }
  for (const DirEntry& e : entries) {
    out->push_back(FindData{e.name, e.attributes, e.size});
  }
  return true;
}

void Win32Api::FindClose(FileObject& handle) { io_.CloseHandle(handle); }

FileObject* Win32Api::OpenOrCreate(const std::string& path, uint32_t desired_access,
                                   uint32_t win32_flags, uint32_t process_id, bool* created) {
  // The probe-then-create idiom: a deliberate open that may fail with
  // name-not-found, followed by a create (section 8.4).
  NtStatus status = NtStatus::kSuccess;
  FileObject* fo =
      CreateFile(path, desired_access, Win32Disposition::kOpenExisting, win32_flags, process_id,
                 &status);
  if (fo != nullptr) {
    if (created != nullptr) {
      *created = false;
    }
    return fo;
  }
  fo = CreateFile(path, desired_access, Win32Disposition::kCreateNew, win32_flags, process_id,
                  &status);
  if (created != nullptr) {
    *created = fo != nullptr;
  }
  return fo;
}

std::optional<uint64_t> Win32Api::GetDiskFreeSpace(const std::string& volume_prefix,
                                                   uint32_t process_id) {
  CreateRequest req;
  req.path = volume_prefix + "\\";
  req.disposition = CreateDisposition::kOpen;
  req.desired_access = kAccessReadAttributes;
  req.create_options = kOptDirectoryFile;
  req.process_id = process_id;
  CreateResult open = io_.Create(req);
  if (open.file == nullptr) {
    return std::nullopt;
  }
  uint64_t free_bytes = 0;
  const NtStatus status = io_.QueryVolumeInformation(*open.file, &free_bytes);
  io_.CloseHandle(*open.file);
  if (NtError(status)) {
    return std::nullopt;
  }
  return free_bytes;
}

}  // namespace ntrace
