// A Win32-like API layer over the native I/O manager.
//
// The paper stresses that applications rarely issue control operations
// themselves -- "in general the application developer never requests these
// operations explicitly, but they are triggered by the Win32 runtime
// libraries" (section 8.3): name validation issues "is volume mounted"
// FSCTLs, existence probes are implemented as opens that fail (52% of open
// errors are name-not-found, section 8.4), DeleteFile is an open +
// SetInformation(Disposition) + close sequence, and attribute queries are
// full open/query/close sessions. This layer reproduces those amplification
// patterns so that synthetic applications produce the paper's operation mix
// (74% of opens performing only control/directory work).

#ifndef SRC_WIN32_WIN32_API_H_
#define SRC_WIN32_WIN32_API_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/ntio/io_manager.h"

namespace ntrace {

// Win32 CreateFile dispositions.
enum class Win32Disposition {
  kCreateNew,         // Fail if exists.
  kCreateAlways,      // Truncate or create.
  kOpenExisting,      // Fail if missing.
  kOpenAlways,        // Open or create.
  kTruncateExisting,  // Truncate; fail if missing.
};

// Win32 CreateFile flags (subset).
enum Win32Flags : uint32_t {
  kW32FlagSequentialScan = 1u << 0,
  kW32FlagWriteThrough = 1u << 1,
  kW32FlagNoBuffering = 1u << 2,
  kW32FlagDeleteOnClose = 1u << 3,
  kW32AttrTemporary = 1u << 4,
  kW32FlagRandomAccess = 1u << 5,
};

struct Win32Options {
  // Issue an "is volume mounted" FSCTL during name validation of opens and
  // directory enumerations, as the NT runtime does.
  bool volume_check_on_open = true;
};

struct FindData {
  std::string name;
  uint32_t attributes = 0;
  uint64_t size = 0;
};

class Win32Api {
 public:
  explicit Win32Api(IoManager& io, Win32Options options = {});

  // CreateFile. Returns nullptr on failure; `status_out` (optional) receives
  // the NT status either way.
  FileObject* CreateFile(const std::string& path, uint32_t desired_access,
                         Win32Disposition disposition, uint32_t win32_flags, uint32_t process_id,
                         NtStatus* status_out = nullptr);

  // Convenience wrappers mirroring kernel32 semantics.
  bool ReadFile(FileObject& file, uint32_t length, uint64_t* bytes_read);
  bool WriteFile(FileObject& file, uint32_t length, uint64_t* bytes_written);
  void SetFilePointer(FileObject& file, uint64_t offset);
  bool SetEndOfFile(FileObject& file);
  bool FlushFileBuffers(FileObject& file);
  void CloseHandle(FileObject& file);

  // DeleteFile: open-with-delete-access + SetInformation(Disposition) +
  // close. Returns false (with status) when the open or the set fails.
  bool DeleteFile(const std::string& path, uint32_t process_id, NtStatus* status_out = nullptr);

  // MoveFile: open + SetInformation(Rename) + close.
  bool MoveFile(const std::string& from, const std::string& to, uint32_t process_id,
                NtStatus* status_out = nullptr);

  // GetFileAttributes: a full open/query/close session that transfers no
  // data -- one of the paper's "control-only" open sessions.
  std::optional<FileBasicInfo> GetFileAttributes(const std::string& path, uint32_t process_id);

  // SetFileTimes/attributes (installers back-dating creation times).
  bool SetFileAttributes(const std::string& path, const FileBasicInfo& info,
                         uint32_t process_id);

  std::optional<uint64_t> GetFileSize(const std::string& path, uint32_t process_id);

  // CreateDirectory / RemoveDirectory.
  bool CreateDirectory(const std::string& path, uint32_t process_id,
                       NtStatus* status_out = nullptr);
  bool RemoveDirectory(const std::string& path, uint32_t process_id);

  // CopyFile: open source, create/truncate destination, 64 KB read/write
  // loop, propagate times. Returns bytes copied, or nullopt on failure.
  std::optional<uint64_t> CopyFile(const std::string& from, const std::string& to,
                                   uint32_t process_id);

  // Directory enumeration: FindFirst opens the directory and returns the
  // first chunk; FindNext continues; FindClose closes. `handle_out` is the
  // directory file object.
  bool FindFirstFile(const std::string& directory, const std::string& pattern,
                     uint32_t process_id, FileObject** handle_out, std::vector<FindData>* out);
  bool FindNextFile(FileObject& handle, std::vector<FindData>* out);
  void FindClose(FileObject& handle);

  // The existence-probe-then-create idiom (section 8.4: a failed open
  // immediately followed by a successful create).
  FileObject* OpenOrCreate(const std::string& path, uint32_t desired_access,
                           uint32_t win32_flags, uint32_t process_id, bool* created);

  // GetDiskFreeSpace: volume-root open + query volume information + close.
  std::optional<uint64_t> GetDiskFreeSpace(const std::string& volume_prefix,
                                           uint32_t process_id);

  IoManager& io() { return io_; }

 private:
  void MaybeVolumeCheck(const std::string& path, uint32_t process_id);

  IoManager& io_;
  Win32Options options_;
};

}  // namespace ntrace

#endif  // SRC_WIN32_WIN32_API_H_
